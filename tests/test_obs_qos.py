"""Unit tests for the QoS ledger and the qos report-section pipeline.

These tests drive :class:`repro.obs.qos.QoSLedger` directly through its
FleetState-observer hooks with prefilled measurement/prediction caches,
so every number below is hand-computable: no simulator, no trained
predictor.  All durations and FPS values are dyadic floats so histogram
totals are exact regardless of merge/observation order.
"""

import json

import pytest

from repro.games.resolution import REFERENCE_RESOLUTION
from repro.obs import (
    BURN_RATE_BUCKETS,
    FPS_RESIDUAL_BUCKETS,
    QOS_MINUTES_BUCKETS,
    QoSLedger,
    build_qos_section,
    check_regressions,
    diff_qos,
    extract_qos,
    flatten_qos,
    label_snapshot,
    merge_snapshots,
    parse_fail_spec,
    render_diff,
    snapshot_to_prometheus,
    summarize_qos,
    validate_prometheus,
)
from repro.placement.fleet import Session

RES = REFERENCE_RESOLUTION


class StubSpec:
    def __init__(self, genre):
        self.genre = genre


class StubCatalog:
    """Maps game -> genre; enough for the ledger's labeling."""

    GENRES = {"Alpha": "genre-a", "Beta": "genre-b"}

    def get(self, name):
        return StubSpec(self.GENRES[name])


class ExplodingPredictor:
    """Guards that prefilled caches cover every prediction."""

    def predict_fps(self, spec):  # pragma: no cover - only on test bugs
        raise AssertionError(f"uncached prediction requested: {spec}")


def make_ledger(**kwargs):
    kwargs.setdefault("slo_fps", 30.0)
    kwargs.setdefault("budget_fraction", 0.25)
    ledger = QoSLedger(StubCatalog(), ExplodingPredictor(), **kwargs)
    solo_a = (("Alpha", RES),)
    solo_b = (("Beta", RES),)
    pair = tuple(sorted([("Alpha", RES), ("Beta", RES)]))
    ledger._measured = {
        solo_a: (40.0,),
        solo_b: (36.0,),
        pair: (24.0, 16.0) if pair[0][0] == "Alpha" else (16.0, 24.0),
    }
    ledger._promised = {
        solo_a: (42.0,),
        solo_b: (38.0,),
        pair: (30.0, 20.0) if pair[0][0] == "Alpha" else (20.0, 30.0),
    }
    return ledger


def run_pair_scenario(ledger):
    """Two overlapping sessions on one server; hand-computed integrals.

    Alpha [0, 8): solo 40 fps for 4 min, paired 24 fps for 4 min
        -> actual 32, promised 42, residual +10, violation 4/8 min.
    Beta [4, 12): paired 16 fps for 4 min, solo 36 fps for 4 min
        -> actual 26, promised 20, residual -6, violation 4/8 min.
    Both breach (violation fraction 0.5 > budget 0.25) and both burn
    (budget 0.25 * 8 = 2 violation-minutes, exceeded mid-flight).
    """
    s1 = Session("Alpha", RES, arrival=0.0, duration=8.0)
    s2 = Session("Beta", RES, arrival=4.0, duration=8.0)
    ledger.advance(0.0)
    ledger.fleet_placed(0, 0, s1)
    ledger.advance(4.0)
    ledger.fleet_placed(0, 1, s2)
    ledger.fleet_departed(0, 0, s1, 8.0)
    ledger.finalize()
    return s1, s2


class TestBuckets:
    @pytest.mark.parametrize(
        "buckets",
        [FPS_RESIDUAL_BUCKETS, QOS_MINUTES_BUCKETS, BURN_RATE_BUCKETS],
    )
    def test_strictly_increasing_and_positive(self, buckets):
        assert all(b > 0 for b in buckets)
        assert list(buckets) == sorted(set(buckets))


class TestLedgerValidation:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="slo_fps"):
            QoSLedger(StubCatalog(), ExplodingPredictor(), slo_fps=0.0)

    def test_rejects_bad_budget(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="budget_fraction"):
                QoSLedger(
                    StubCatalog(),
                    ExplodingPredictor(),
                    slo_fps=30.0,
                    budget_fraction=bad,
                )


class TestLedgerAccounting:
    def test_conservation_and_exact_calibration(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        section = ledger.section()
        sessions = section["sessions"]
        assert sessions["opened"] == 2
        assert sessions["closed"] == 2
        assert sessions["conservation_errors"] == 0
        assert sessions["close_reasons"] == {"departed": 2}
        calibration = section["calibration"]
        assert calibration["samples"] == 2
        assert calibration["fps_residual_mae"] == pytest.approx(8.0)
        assert calibration["fps_residual_bias"] == pytest.approx(2.0)
        assert calibration["overpredictions"] == 1
        assert calibration["underpredictions"] == 1

    def test_exact_slo_stats(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        slo = ledger.section()["slo"]
        assert slo["target_fps"] == 30.0
        assert slo["budget_fraction"] == 0.25
        assert slo["session_minutes"] == pytest.approx(16.0)
        assert slo["violation_minutes"] == pytest.approx(8.0)
        assert slo["violation_fraction"] == pytest.approx(0.5)
        assert slo["breaches"] == 2
        assert slo["burn_events"] == 2

    def test_per_game_and_per_genre_breakdowns(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        section = ledger.section()
        assert set(section["per_game"]) == {"Alpha", "Beta"}
        alpha = section["per_game"]["Alpha"]
        assert alpha["samples"] == 1
        assert alpha["fps_residual_mae"] == pytest.approx(10.0)
        assert alpha["violation_minutes"] == pytest.approx(4.0)
        assert alpha["breaches"] == 1
        assert alpha["burn_events"] == 1
        beta = section["per_game"]["Beta"]
        assert beta["fps_residual_mae"] == pytest.approx(6.0)
        assert beta["fps_residual_bias"] == pytest.approx(-6.0)
        assert set(section["per_genre"]) == {"genre-a", "genre-b"}
        assert section["per_shard"] == {}

    def test_open_records_gauge_tracks_lifecycle(self):
        ledger = make_ledger()
        s1 = Session("Alpha", RES, arrival=0.0, duration=8.0)
        ledger.fleet_placed(0, 0, s1)
        assert ledger.open_records == 1
        snap = ledger.telemetry.snapshot()
        assert snap["gauges"]["qos_open_sessions"] == 1
        ledger.finalize()
        assert ledger.open_records == 0

    def test_eviction_reason_labels(self):
        ledger = make_ledger()
        s1 = Session("Alpha", RES, arrival=0.0, duration=8.0)
        ledger.fleet_placed(0, 0, s1)
        ledger.advance(2.0)
        ledger.mark_eviction("migrated")
        ledger.fleet_evicted(0, [(0, s1)])
        # The override is consumed: the next eviction reverts to default.
        s2 = Session("Beta", RES, arrival=2.0, duration=4.0)
        ledger.advance(2.0)
        ledger.fleet_placed(1, 1, s2)
        ledger.advance(3.0)
        ledger.fleet_evicted(1, [(1, s2)])
        reasons = ledger.section()["sessions"]["close_reasons"]
        assert reasons == {"evicted": 1, "migrated": 1}

    def test_departed_unknown_member_is_ignored(self):
        ledger = make_ledger()
        s1 = Session("Alpha", RES, arrival=0.0, duration=8.0)
        ledger.fleet_departed(7, 3, s1, 1.0)
        assert ledger.closed == 0

    def test_reset_keeps_caches_clears_run_state(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        measured = dict(ledger._measured)
        ledger.reset()
        assert ledger.opened == 0 and ledger.closed == 0
        assert ledger._measured == measured

    def test_clock_never_rewinds(self):
        ledger = make_ledger()
        ledger.advance(5.0)
        ledger.advance(1.0)
        assert ledger._now == 5.0


class TestPrometheusRoundTrip:
    def test_labeled_qos_snapshot_validates(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        labeled = label_snapshot(ledger.telemetry.snapshot(), shard="0")
        text = snapshot_to_prometheus(labeled)
        assert validate_prometheus(text) == []
        assert 'fps_residual_abs_bucket{' in text
        assert 'shard="0"' in text

    def test_labeled_snapshot_yields_per_shard_group(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        labeled = label_snapshot(ledger.telemetry.snapshot(), shard="3")
        section = build_qos_section(labeled)
        assert set(section["per_shard"]) == {"3"}
        shard = section["per_shard"]["3"]
        assert shard["opened"] == 2 and shard["closed"] == 2
        assert shard["samples"] == 2
        # per-game children also carry shard labels after labeling; they
        # must not leak into the shard group (no double counting).
        assert shard["session_minutes"] == pytest.approx(16.0)


class TestMergeExactness:
    def test_disjoint_shards_merge_exactly(self):
        a, b = make_ledger(), make_ledger()
        run_pair_scenario(a)
        s3 = Session("Beta", RES, arrival=0.0, duration=4.0)
        b.fleet_placed(0, 0, s3)
        b.finalize()
        union = make_ledger()
        union.fleet_placed(9, 9, Session("Beta", RES, arrival=0.0, duration=4.0))
        run_pair_scenario(union)  # its finalize() also closes the solo Beta
        merged = merge_snapshots(
            label_snapshot(a.telemetry.snapshot(), shard="0"),
            label_snapshot(b.telemetry.snapshot(), shard="1"),
        )
        section = build_qos_section(merged)
        want = build_qos_section(union.telemetry.snapshot())
        # Identical fleet-wide accounting whether booked by one ledger or
        # merged from two (the per-shard group is the only extra info).
        assert section["sessions"] == want["sessions"]
        assert section["calibration"] == want["calibration"]
        assert section["slo"] == want["slo"]
        assert section["per_game"] == want["per_game"]
        assert section["per_genre"] == want["per_genre"]
        assert set(section["per_shard"]) == {"0", "1"}
        assert section["per_shard"]["1"]["samples"] == 1

    def test_overlapping_game_labels_merge_exactly(self):
        a, b = make_ledger(), make_ledger()
        run_pair_scenario(a)
        run_pair_scenario(b)
        merged = merge_snapshots(
            label_snapshot(a.telemetry.snapshot(), shard="0"),
            label_snapshot(b.telemetry.snapshot(), shard="1"),
        )
        section = build_qos_section(merged)
        single = build_qos_section(a.telemetry.snapshot())
        assert section["calibration"]["samples"] == 4
        assert section["calibration"]["fps_residual_mae"] == pytest.approx(
            single["calibration"]["fps_residual_mae"]
        )
        alpha = section["per_game"]["Alpha"]
        assert alpha["samples"] == 2
        assert alpha["fps_residual_mae"] == pytest.approx(10.0)
        assert alpha["violation_minutes"] == pytest.approx(8.0)
        assert alpha["breaches"] == 2


class TestSectionHelpers:
    def test_build_returns_none_without_qos_instruments(self):
        from repro.obs import Telemetry

        t = Telemetry()
        t.counter("requests_total").inc()
        assert build_qos_section(t.snapshot()) is None

    def test_extract_from_report_section_and_snapshot(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        section = ledger.section()
        snapshot = ledger.telemetry.snapshot()
        assert extract_qos({"qos": section}) == section
        assert extract_qos(section) == section
        rebuilt = extract_qos({"telemetry": snapshot})
        assert rebuilt["sessions"] == section["sessions"]
        bare = extract_qos(snapshot)
        assert bare["calibration"] == section["calibration"]

    def test_extract_rejects_qosless_payload(self):
        with pytest.raises(ValueError, match="--slo-fps"):
            extract_qos({"counters": {}}, source="report.json")

    def test_json_round_trip_is_stable(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        section = ledger.section()
        assert json.loads(json.dumps(section)) == section


class TestFlattenDiffGate:
    def test_flatten_paths(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        rows = flatten_qos(ledger.section())
        assert rows[("calibration", "fps_residual_mae")] == pytest.approx(8.0)
        assert rows[("slo", "violation_minutes")] == pytest.approx(8.0)
        assert rows[("sessions", "conservation_errors")] == 0.0
        assert rows[("sessions.close_reasons", "departed")] == 2.0
        assert rows[("per_game.Alpha", "breaches")] == 1.0

    def test_identical_sections_diff_clean(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        section = ledger.section()
        rows = diff_qos(section, section)
        assert rows and all(row["delta"] == 0.0 for row in rows)
        assert "no differences" in render_diff(rows, only_changed=True)
        spec = parse_fail_spec("fps_residual_mae:+10%")
        assert check_regressions(rows, [spec]) == []

    def test_injected_mae_regression_breaches_gate(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        old = ledger.section()
        new = json.loads(json.dumps(old))
        new["calibration"]["fps_residual_mae"] *= 1.5
        rows = diff_qos(old, new)
        breaches = check_regressions(rows, [parse_fail_spec("fps_residual_mae:+10%")])
        assert len(breaches) == 1
        assert breaches[0]["metric"] == "calibration"
        # Scoped spec works too, and a loose threshold does not trip.
        assert check_regressions(
            rows, [parse_fail_spec("calibration.fps_residual_mae:+10%")]
        )
        assert not check_regressions(
            rows, [parse_fail_spec("fps_residual_mae:+60%")]
        )


class TestSummarize:
    def test_mentions_key_stats(self):
        ledger = make_ledger()
        run_pair_scenario(ledger)
        text = summarize_qos(ledger.section(), title="run")
        assert "== run ==" in text
        assert "opened=2 closed=2 conservation_errors=0" in text
        assert "mae=8" in text
        assert "Alpha" in text and "genre-b" in text
