"""Tests for genre archetypes and the diversity-stretch calibration."""

import pytest

from repro.games.genres import Genre, GenreArchetype, _stretch, genre_archetypes
from repro.hardware.resources import Resource


class TestStretch:
    def test_widens_both_ends(self):
        lo, hi = _stretch((1.0, 2.0), 0.7, 1.35)
        assert lo == pytest.approx(0.7)
        assert hi == pytest.approx(2.7)

    def test_cap_applies(self):
        lo, hi = _stretch((0.5, 0.8), 0.7, 1.2, cap=0.85)
        assert hi == pytest.approx(0.85)

    def test_never_inverts(self):
        lo, hi = _stretch((0.8, 0.82), 0.7, 1.2, cap=0.5)
        assert hi > lo


class TestArchetypes:
    @pytest.fixture(scope="class")
    def archetypes(self):
        return genre_archetypes()

    def test_every_genre_present(self, archetypes):
        assert set(archetypes) == set(Genre)

    def test_ranges_well_formed(self, archetypes):
        for genre, arch in archetypes.items():
            for field in (
                "cpu_time_ms",
                "gpu_fixed_ms",
                "gpu_per_mpix_ms",
                "xfer_fixed_ms",
                "xfer_per_mpix_ms",
                "width_cpu",
                "width_gpu",
                "cpu_mem_gb",
                "gpu_mem_gb",
                "scene_rho",
                "scene_sigma",
            ):
                lo, hi = getattr(arch, field)
                assert lo <= hi, (genre, field)
                assert lo >= 0, (genre, field)

    def test_util_ranges_capped(self, archetypes):
        for genre, arch in archetypes.items():
            for res, (lo, hi) in arch.util.items():
                assert 0 <= lo <= hi <= 0.85 + 1e-9, (genre, res)

    def test_sensitivity_covers_all_resources(self, archetypes):
        for arch in archetypes.values():
            assert set(arch.sensitivity) == set(Resource)

    def test_missing_util_rejected(self):
        arch = genre_archetypes()[Genre.INDIE]
        util = dict(arch.util)
        del util[Resource.PCIE_BW]
        with pytest.raises(ValueError, match="PCIe-BW"):
            GenreArchetype(
                genre=arch.genre,
                cpu_time_ms=arch.cpu_time_ms,
                gpu_fixed_ms=arch.gpu_fixed_ms,
                gpu_per_mpix_ms=arch.gpu_per_mpix_ms,
                xfer_fixed_ms=arch.xfer_fixed_ms,
                xfer_per_mpix_ms=arch.xfer_per_mpix_ms,
                width_cpu=arch.width_cpu,
                width_gpu=arch.width_gpu,
                util=util,
                sensitivity=arch.sensitivity,
                cpu_mem_gb=arch.cpu_mem_gb,
                gpu_mem_gb=arch.gpu_mem_gb,
                scene_rho=arch.scene_rho,
                scene_sigma=arch.scene_sigma,
            )

    def test_genre_shapes_differ(self, archetypes):
        # AAA open-world games must be much heavier than card/casual.
        aaa = archetypes[Genre.AAA_OPEN_WORLD]
        card = archetypes[Genre.CARD_CASUAL]
        assert aaa.gpu_per_mpix_ms[0] > card.gpu_per_mpix_ms[1]
        assert aaa.cpu_mem_gb[0] > card.cpu_mem_gb[1] * 0.5
