"""Tests for the SLO-facing CLI surface: serve --slo-fps and repro slo.

Flag validation must fail fast with one-line errors (exit 1 for bad
values, exit 2 for bad flag combinations), and the slo summary/diff
subcommands must gate on calibration drift exactly like the acceptance
pipeline does (exit 3 on a breached --fail-on spec).
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def predictor_path(minilab, tmp_path):
    """The minilab's trained predictor saved as a CLI-loadable bundle."""
    path = tmp_path / "predictor.json"
    minilab.predictor.save(path)
    return str(path)


def serve(predictor_path, tmp_path, *extra):
    out = tmp_path / "report.json"
    rc = main(
        [
            "serve",
            "--predictor",
            predictor_path,
            "--requests",
            "30",
            "--out",
            str(out),
            *extra,
        ]
    )
    return rc, out


class TestServeSloFlag:
    def test_qos_section_and_config_keys(self, predictor_path, tmp_path):
        rc, out = serve(predictor_path, tmp_path, "--slo-fps", "30")
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["slo_fps"] == 30.0
        assert payload["config"]["qos_budget"] == 0.05
        qos = payload["qos"]
        assert qos["sessions"]["opened"] == 30
        assert qos["sessions"]["conservation_errors"] == 0
        assert qos["per_game"], "per-game breakdown missing"

    def test_absent_without_flag(self, predictor_path, tmp_path):
        rc, out = serve(predictor_path, tmp_path)
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "qos" not in payload
        assert "slo_fps" not in payload["config"]

    def test_sharded_qos_with_per_shard_groups(self, predictor_path, tmp_path):
        rc, out = serve(
            predictor_path, tmp_path, "--slo-fps", "30", "--shards", "2"
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        qos = payload["qos"]
        assert qos["sessions"]["conservation_errors"] == 0
        assert qos["per_shard"]
        assert payload["config"]["slo_fps"] == 30.0

    def test_same_seed_qos_is_byte_identical(self, predictor_path, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        _, first = serve(predictor_path, tmp_path / "a", "--slo-fps", "30")
        _, second = serve(predictor_path, tmp_path / "b", "--slo-fps", "30")
        a = json.loads(first.read_text())["qos"]
        b = json.loads(second.read_text())["qos"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_custom_budget(self, predictor_path, tmp_path):
        rc, out = serve(
            predictor_path,
            tmp_path,
            "--slo-fps",
            "30",
            "--qos-budget",
            "0.5",
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["qos_budget"] == 0.5
        assert payload["qos"]["slo"]["budget_fraction"] == 0.5


class TestSloFlagValidation:
    @pytest.mark.parametrize("value", ["0", "-5", "fast"])
    def test_bad_slo_fps_exits_one(self, predictor_path, value, capsys):
        rc = main(
            ["serve", "--predictor", predictor_path, "--slo-fps", value]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("value", ["0", "1.5", "-1", "cheap"])
    def test_bad_budget_exits_one(self, predictor_path, value, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--slo-fps",
                "30",
                "--qos-budget",
                value,
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_budget_without_target_exits_two(self, predictor_path, capsys):
        rc = main(
            ["serve", "--predictor", predictor_path, "--qos-budget", "0.1"]
        )
        assert rc == 2
        assert "--qos-budget requires --slo-fps" in capsys.readouterr().err


class TestSloSummary:
    def test_summary_from_report(self, predictor_path, tmp_path, capsys):
        _, out = serve(predictor_path, tmp_path, "--slo-fps", "30")
        capsys.readouterr()
        assert main(["slo", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "conservation_errors=0" in text
        assert "calibration:" in text
        assert "slo (target 30 fps)" in text

    def test_summary_rejects_qosless_report(
        self, predictor_path, tmp_path, capsys
    ):
        _, out = serve(predictor_path, tmp_path)
        capsys.readouterr()
        assert main(["slo", "summary", str(out)]) == 1
        assert "--slo-fps" in capsys.readouterr().err


class TestSloDiff:
    def test_identical_reports_pass_gate(self, predictor_path, tmp_path, capsys):
        _, out = serve(predictor_path, tmp_path, "--slo-fps", "30")
        capsys.readouterr()
        rc = main(
            [
                "slo",
                "diff",
                str(out),
                str(out),
                "--fail-on",
                "fps_residual_mae:+10%",
            ]
        )
        assert rc == 0
        assert "no differences" in capsys.readouterr().out

    def test_injected_regression_exits_three(
        self, predictor_path, tmp_path, capsys
    ):
        _, out = serve(predictor_path, tmp_path, "--slo-fps", "30")
        payload = json.loads(out.read_text())
        payload["qos"]["calibration"]["fps_residual_mae"] *= 1.5
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(payload))
        capsys.readouterr()
        rc = main(
            [
                "slo",
                "diff",
                str(out),
                str(worse),
                "--fail-on",
                "fps_residual_mae:+10%",
            ]
        )
        assert rc == 3
        assert "REGRESSION calibration.fps_residual_mae" in capsys.readouterr().err

    def test_missing_file_exits_one(self, capsys):
        assert main(["slo", "diff", "/nonexistent/a.json", "/nonexistent/b.json"]) == 1
        assert capsys.readouterr().err.startswith("error:")
