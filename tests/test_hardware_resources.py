"""Tests for the resource model and ResourceVector."""

import pytest

from repro.hardware.resources import (
    CPU_RESOURCES,
    GPU_RESOURCES,
    NUM_RESOURCES,
    Resource,
    ResourceDomain,
    ResourceKind,
    ResourceVector,
)


class TestResource:
    def test_seven_resources(self):
        assert NUM_RESOURCES == 7

    def test_labels_match_paper(self):
        labels = {r.label for r in Resource}
        assert labels == {
            "CPU-CE", "LLC", "MEM-BW", "GPU-CE", "GPU-BW", "GPU-L2", "PCIe-BW",
        }

    def test_from_label_round_trip(self):
        for res in Resource:
            assert Resource.from_label(res.label) is res

    def test_from_label_unknown(self):
        with pytest.raises(KeyError):
            Resource.from_label("TPU-CE")

    def test_domains(self):
        assert Resource.CPU_CE.domain is ResourceDomain.CPU
        assert Resource.GPU_BW.domain is ResourceDomain.GPU
        assert Resource.PCIE_BW.domain is ResourceDomain.LINK

    def test_kinds(self):
        assert Resource.CPU_CE.kind is ResourceKind.COMPUTE
        assert Resource.LLC.kind is ResourceKind.CACHE
        assert Resource.GPU_L2.kind is ResourceKind.CACHE
        assert Resource.MEM_BW.kind is ResourceKind.BANDWIDTH
        assert Resource.PCIE_BW.kind is ResourceKind.BANDWIDTH

    def test_domain_partitions(self):
        assert len(CPU_RESOURCES) == 3
        assert len(GPU_RESOURCES) == 3
        assert set(CPU_RESOURCES) | set(GPU_RESOURCES) | {Resource.PCIE_BW} == set(
            Resource
        )


class TestResourceVector:
    def test_default_zero(self):
        vec = ResourceVector()
        assert all(v == 0.0 for v in vec)

    def test_from_mapping(self):
        vec = ResourceVector({Resource.GPU_CE: 0.5})
        assert vec[Resource.GPU_CE] == 0.5
        assert vec[Resource.CPU_CE] == 0.0

    def test_from_sequence(self):
        vec = ResourceVector([0.1] * NUM_RESOURCES)
        assert vec[Resource.LLC] == pytest.approx(0.1)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="7"):
            ResourceVector([0.1, 0.2])

    def test_non_finite_rejected(self):
        values = [0.0] * NUM_RESOURCES
        values[2] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            ResourceVector(values)

    def test_arithmetic(self):
        a = ResourceVector([1.0] * NUM_RESOURCES)
        b = ResourceVector([2.0] * NUM_RESOURCES)
        assert (a + b)[Resource.CPU_CE] == 3.0
        assert (b - a)[Resource.CPU_CE] == 1.0
        assert (2 * a)[Resource.CPU_CE] == 2.0

    def test_equality(self):
        assert ResourceVector([1.0] * 7) == ResourceVector([1.0] * 7)
        assert ResourceVector([1.0] * 7) != ResourceVector([2.0] * 7)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ResourceVector())

    def test_clip(self):
        vec = ResourceVector([-1.0, 0.5, 2.0, 0.0, 0.0, 0.0, 0.0]).clip(0.0, 1.0)
        assert vec[Resource.CPU_CE] == 0.0
        assert vec[Resource.LLC] == 1.0

    def test_values_read_only(self):
        vec = ResourceVector([1.0] * 7)
        with pytest.raises(ValueError):
            vec.values[0] = 5.0

    def test_dominates(self):
        big = ResourceVector([1.0] * 7)
        small = ResourceVector([0.5] * 7)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_scale_selected(self):
        vec = ResourceVector([1.0] * 7).scale({Resource.GPU_CE: 0.5})
        assert vec[Resource.GPU_CE] == 0.5
        assert vec[Resource.CPU_CE] == 1.0

    def test_dict_round_trip(self):
        vec = ResourceVector({Resource.MEM_BW: 0.3, Resource.GPU_L2: 0.7})
        assert ResourceVector.from_dict(vec.to_dict()) == vec

    def test_repr_contains_labels(self):
        assert "GPU-CE" in repr(ResourceVector())
