"""Tests for random forests."""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier, RandomForestRegressor


def _friedman(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2
    return X, y


class TestRandomForestRegressor:
    def test_better_than_single_stump_forest(self):
        X, y = _friedman()
        Xte, yte = _friedman(seed=1)
        small = RandomForestRegressor(n_estimators=3, max_depth=2, seed=0).fit(X, y)
        big = RandomForestRegressor(n_estimators=40, max_depth=10, seed=0).fit(X, y)
        mse_small = np.mean((small.predict(Xte) - yte) ** 2)
        mse_big = np.mean((big.predict(Xte) - yte) ** 2)
        assert mse_big < mse_small

    def test_deterministic_given_seed(self):
        X, y = _friedman(100)
        a = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_model(self):
        X, y = _friedman(100)
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_no_bootstrap_full_trees_fit_exactly(self):
        X, y = _friedman(80)
        forest = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        assert np.allclose(forest.predict(X), y)

    def test_importances_normalized(self):
        X, y = _friedman(200)
        forest = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestRandomForestClassifier:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=25, seed=0).fit(X, y)
        assert np.mean(forest.predict(X) == y) > 0.95

    def test_predict_proba_valid(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_bootstrap_class_absence_handled(self):
        # With tiny data some bootstrap draws miss a class entirely; the
        # soft vote must still map probabilities onto the full class set.
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 1])
        forest = RandomForestClassifier(n_estimators=30, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 2))
        y = np.where(X[:, 0] > 0, "hi", "lo")
        forest = RandomForestClassifier(n_estimators=15, seed=0).fit(X, y)
        assert set(forest.predict(X)) <= {"hi", "lo"}
