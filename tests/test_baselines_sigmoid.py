"""Tests for the Sigmoid baseline."""

import numpy as np
import pytest

from repro.baselines import SigmoidPredictor
from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution

R1080 = Resolution(1920, 1080)


@pytest.fixture(scope="module")
def fitted(minilab):
    return SigmoidPredictor(minilab.db).fit(minilab.measured_train)


class TestFit:
    def test_fits_parameters_for_seen_games(self, minilab, fitted):
        seen = {n for m in minilab.measured_train for n in m.spec.names}
        # Most games with enough observations get their own parameters.
        assert len(fitted._params) >= len(seen) // 2

    def test_fallback_exists(self, fitted):
        assert fitted._fallback is not None

    def test_unseen_game_uses_fallback(self, minilab, fitted):
        spec = ColocationSpec(
            (("CompletelyUnknown", R1080), ("AlsoUnknown", R1080))
        )
        degr = fitted.predict_degradations(spec)
        assert degr.shape == (2,)
        assert np.all((degr > 0) & (degr <= 1.5))


class TestPredict:
    def test_partner_blindness(self, minilab, fitted):
        """The defining flaw: predictions ignore WHO the partners are."""
        names = minilab.names
        a = ColocationSpec(((names[0], R1080), (names[1], R1080)))
        b = ColocationSpec(((names[0], R1080), (names[2], R1080)))
        assert fitted.predict_degradations(a)[0] == fitted.predict_degradations(b)[0]

    def test_degradation_monotone_in_size(self, minilab, fitted):
        names = minilab.names
        degr = []
        for k in (2, 3, 4):
            spec = ColocationSpec(tuple((n, R1080) for n in names[:k]))
            degr.append(fitted.predict_degradations(spec)[0])
        assert degr[0] >= degr[1] >= degr[2]

    def test_fps_scales_with_solo(self, minilab, fitted):
        names = minilab.names
        spec = ColocationSpec(((names[0], R1080), (names[1], R1080)))
        fps = fitted.predict_fps(spec)
        solo = minilab.db.get(names[0]).solo_fps_at(R1080)
        degr = fitted.predict_degradations(spec)
        assert fps[0] == pytest.approx(degr[0] * solo)

    def test_feasibility_thresholds_fps(self, minilab, fitted):
        names = minilab.names
        spec = ColocationSpec(((names[0], R1080), (names[1], R1080)))
        fps = fitted.predict_fps(spec)
        verdicts = fitted.predict_feasible(spec, qos=60.0)
        assert np.array_equal(verdicts, fps >= 60.0)
        assert fitted.colocation_feasible(spec, 60.0) == bool(np.all(verdicts))

    def test_reasonable_accuracy_on_training_domain(self, minilab, fitted):
        """Sanity: the baseline is a real model, not a strawman."""
        errors = []
        for m in minilab.measured_test:
            degr = fitted.predict_degradations(m.spec)
            for i, (name, res) in enumerate(m.spec.entries):
                solo = minilab.db.get(name).solo_fps_at(res)
                actual = m.fps[i] / solo
                errors.append(abs(degr[i] - actual) / actual)
        assert np.mean(errors) < 0.5
