"""Tests for online assignment policies."""

import numpy as np
import pytest

from repro.baselines import VBPJudge
from repro.games.resolution import Resolution
from repro.scheduling import (
    GameRequest,
    assign_max_fps,
    assign_worst_fit,
    evaluate_assignment,
    generate_requests,
)

R = Resolution(1920, 1080)


class _SoloLovingPredictor:
    """Toy predictor: every added co-runner halves everyone's FPS."""

    def predict_fps(self, spec):
        base = 100.0 / (2 ** (spec.size - 1))
        return np.full(spec.size, base)


class TestAssignMaxFps:
    def test_spreads_when_servers_plentiful(self, minilab):
        requests = [GameRequest(minilab.names[0], R) for _ in range(5)]
        result = assign_max_fps(requests, _SoloLovingPredictor(), n_servers=10)
        assert result.n_requests == 5
        occupied = result.occupied()
        assert len(occupied) == 5
        assert all(len(s) == 1 for s in occupied)

    def test_respects_max_colocation(self, minilab):
        requests = [GameRequest(minilab.names[0], R) for _ in range(8)]
        result = assign_max_fps(
            requests, _SoloLovingPredictor(), n_servers=2, max_colocation=4
        )
        assert all(len(s) == 4 for s in result.occupied())

    def test_overflow_rejected(self):
        requests = [GameRequest("a", R) for _ in range(9)]
        with pytest.raises(ValueError):
            assign_max_fps(requests, _SoloLovingPredictor(), n_servers=2)

    def test_invalid_fleet(self):
        with pytest.raises(ValueError):
            assign_max_fps([], _SoloLovingPredictor(), n_servers=0)

    def test_uses_real_predictor(self, minilab):
        requests = generate_requests(minilab.names[:5], 12, seed=0)
        result = assign_max_fps(requests, minilab.predictor, n_servers=6)
        assert result.n_requests == 12
        assert result.n_servers == 6


class TestAssignWorstFit:
    def test_all_requests_placed(self, minilab):
        vbp = VBPJudge(minilab.db)
        requests = generate_requests(minilab.names[:5], 20, seed=1)
        result = assign_worst_fit(requests, vbp, n_servers=10)
        assert result.n_requests == 20

    def test_prefers_empty_servers(self, minilab):
        vbp = VBPJudge(minilab.db)
        requests = [GameRequest(minilab.names[0], R) for _ in range(4)]
        result = assign_worst_fit(requests, vbp, n_servers=8)
        assert all(len(s) == 1 for s in result.occupied())

    def test_respects_capacity_then_overflows_gracefully(self, minilab):
        vbp = VBPJudge(minilab.db)
        requests = [GameRequest(minilab.names[0], R) for _ in range(8)]
        result = assign_worst_fit(requests, vbp, n_servers=2, max_colocation=4)
        assert result.n_requests == 8


class TestEvaluateAssignment:
    def test_fps_per_request(self, minilab):
        requests = generate_requests(minilab.names[:4], 10, seed=2)
        placement = assign_max_fps(requests, minilab.predictor, n_servers=5)
        fps = evaluate_assignment(minilab.catalog, placement)
        assert fps.shape == (10,)
        assert np.all(fps > 0)

    def test_lonelier_placement_faster(self, minilab):
        requests = generate_requests(minilab.names[:4], 12, seed=3)
        packed = assign_max_fps(requests, minilab.predictor, n_servers=3)
        spread = assign_max_fps(requests, minilab.predictor, n_servers=12)
        fps_packed = evaluate_assignment(minilab.catalog, packed).mean()
        fps_spread = evaluate_assignment(minilab.catalog, spread).mean()
        assert fps_spread > fps_packed
