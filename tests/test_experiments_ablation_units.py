"""Unit tests for ablation/importance feature-index plumbing."""

import numpy as np

from repro.experiments.ablations import _agg_slice, _curve_slice
from repro.experiments.ext_importance import _SAMPLES_PER_CURVE, _group_indices
from repro.hardware.resources import CPU_RESOURCES, GPU_RESOURCES, Resource


class TestCurveSlice:
    def test_cpu_indices(self):
        idx = _curve_slice(CPU_RESOURCES)
        assert len(idx) == 3 * 11
        # CPU_CE occupies curve 0.
        assert 0 in idx and 10 in idx

    def test_disjoint_domains(self):
        cpu = set(_curve_slice(CPU_RESOURCES).tolist())
        gpu = set(_curve_slice(GPU_RESOURCES).tolist())
        assert not cpu & gpu


class TestAggSlice:
    def test_keeps_size_and_selected_stats(self):
        co = [np.arange(7, dtype=float)]
        out = _agg_slice([Resource.CPU_CE], co)
        # |G|, mean(CPU_CE), var(CPU_CE)
        assert out.shape == (3,)
        assert out[0] == 1.0
        assert out[1] == 0.0  # CPU_CE is index 0 of the intensity vector
        assert out[2] == 0.0  # single co-runner => zero variance


class TestImportanceGroups:
    def test_groups_partition_rm_features(self):
        groups = _group_indices()
        all_idx = np.concatenate(list(groups.values()))
        n_features = 7 * _SAMPLES_PER_CURVE + 1 + 14
        assert sorted(all_idx.tolist()) == list(range(n_features))

    def test_one_group_per_resource_plus_size(self):
        groups = _group_indices()
        assert set(groups) == {r.label for r in Resource} | {"n_corunners"}

    def test_resource_group_sizes(self):
        groups = _group_indices()
        for res in Resource:
            assert len(groups[res.label]) == _SAMPLES_PER_CURVE + 2
