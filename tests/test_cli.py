"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_colocation
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution


@pytest.fixture()
def predictor_path(minilab, tmp_path):
    """The minilab's trained predictor saved as a CLI-loadable bundle."""
    path = tmp_path / "predictor.json"
    minilab.predictor.save(path)
    return str(path)


class TestParseColocation:
    def test_with_resolutions(self):
        spec = parse_colocation("Dota2@1920x1080, H1Z1@1280x720")
        assert spec.entries == (
            ("Dota2", Resolution(1920, 1080)),
            ("H1Z1", Resolution(1280, 720)),
        )

    def test_default_resolution(self):
        spec = parse_colocation("Dota2")
        assert spec.entries == (("Dota2", REFERENCE_RESOLUTION),)

    def test_game_name_with_spaces(self):
        spec = parse_colocation("Far Cry4@1600x900")
        assert spec.entries[0][0] == "Far Cry4"

    def test_bad_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            parse_colocation("Dota2@huge")

    def test_empty(self):
        with pytest.raises(ValueError):
            parse_colocation(" , ")


class TestCatalogCommand:
    def test_lists_games(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Dota2" in out
        assert "solo FPS" in out

    def test_genre_filter(self, capsys):
        assert main(["catalog", "--genre", "moba-esports"]) == 0
        out = capsys.readouterr().out
        assert "Dota2" in out
        assert "ARK Survival Evolved" not in out

    def test_unknown_genre(self, capsys):
        assert main(["catalog", "--genre", "sports-betting"]) == 1


class TestFullWorkflow:
    """profile -> train -> predict, end to end through the CLI."""

    def test_workflow(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        predictor_path = tmp_path / "predictor.json"

        rc = main(
            [
                "profile",
                "--games",
                "Dota2,H1Z1,Stardew Valley,Team Fortress 2,Northgard",
                "--out",
                str(db_path),
            ]
        )
        assert rc == 0
        assert db_path.exists()
        assert len(json.loads(db_path.read_text())["profiles"]) == 5

        rc = main(
            [
                "train",
                "--db",
                str(db_path),
                "--pairs",
                "40",
                "--triples",
                "15",
                "--quads",
                "0",
                "--out",
                str(predictor_path),
            ]
        )
        assert rc == 0
        assert predictor_path.exists()

        rc = main(
            [
                "predict",
                "--predictor",
                str(predictor_path),
                "--colocation",
                "Dota2@1920x1080,Stardew Valley@1280x720",
                "--qos",
                "30",
            ]
        )
        out = capsys.readouterr().out
        assert "predicted FPS" in out
        assert rc in (0, 2)

    def test_serve_cm_feasible(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "120",
                "--arrival-rate",
                "4.0",
                "--policy",
                "cm-feasible",
                "--trace-seed",
                "3",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_sessions"] == 120
        assert len(payload["placements"]) == 120
        counters = payload["telemetry"]["counters"]
        assert counters["requests"] == 120
        assert counters.get("policy_errors", 0) == 0
        assert payload["telemetry"]["caches"]["cm-feasible"]["hit_rate"] > 0
        assert payload["telemetry"]["histograms"]["decision_latency_s"]["count"] == 120
        assert payload["config"]["policy"] == "cm-feasible"

    def test_serve_dedicated_to_file(self, predictor_path, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "25",
                "--policy",
                "dedicated",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["servers_opened"] == 25
        assert all(p["choice"] is None for p in payload["placements"])

    def test_serve_deterministic_in_trace_seed(self, predictor_path, capsys):
        argv = [
            "serve",
            "--predictor",
            predictor_path,
            "--requests",
            "40",
            "--policy",
            "worst-fit",
            "--trace-seed",
            "9",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["placements"] == second["placements"]

    def test_predict_unknown_game(self, tmp_path, capsys):
        # Errors surface as exit code 1 with a message, not tracebacks.
        db_path = tmp_path / "db.json"
        assert main(["profile", "--games", "Dota2,H1Z1", "--out", str(db_path)]) == 0
        predictor_path = tmp_path / "p.json"
        assert (
            main(
                [
                    "train",
                    "--db",
                    str(db_path),
                    "--pairs",
                    "10",
                    "--triples",
                    "0",
                    "--quads",
                    "0",
                    "--out",
                    str(predictor_path),
                ]
            )
            == 0
        )
        rc = main(
            [
                "predict",
                "--predictor",
                str(predictor_path),
                "--colocation",
                "NoSuchGame,Dota2",
            ]
        )
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestServeResilience:
    """The chaos-serving CLI flags and the resilience report section."""

    def test_chaos_flags_produce_resilience_report(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "200",
                "--arrival-rate",
                "4.0",
                "--policy",
                "cm-feasible",
                "--fault-rate",
                "0.35",
                "--crash-rate",
                "0.05",
                "--breaker-threshold",
                "0.3",
                "--trace-seed",
                "13",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["telemetry"]["counters"]
        assert payload["n_sessions"] == 200
        assert counters["faults_injected"] > 0
        assert counters["server_crashes"] > 0
        assert counters["requests"] == 200 + counters.get("readmissions", 0)
        assert payload["resilience"]["enabled"] is True
        assert payload["resilience"]["breakers"]["primary"]["transitions"]
        assert payload["config"]["fault_rate"] == 0.35
        assert payload["config"]["crash_rate"] == 0.05
        assert payload["config"]["breaker_threshold"] == 0.3

    def test_zero_fault_flags_match_plain_serve(self, predictor_path, capsys):
        base = [
            "serve",
            "--predictor",
            predictor_path,
            "--requests",
            "60",
            "--policy",
            "cm-feasible",
            "--trace-seed",
            "2",
        ]
        assert main(base) == 0
        plain = json.loads(capsys.readouterr().out)
        assert (
            main(base + ["--fault-rate", "0", "--crash-rate", "0"])
            == 0
        )
        chaosless = json.loads(capsys.readouterr().out)
        assert plain["placements"] == chaosless["placements"]
        assert chaosless["resilience"]["trips"] == 0

    def test_decision_deadline_flag(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "30",
                "--policy",
                "worst-fit",
                "--decision-deadline-ms",
                "1e-9",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["telemetry"]["counters"]
        assert counters["deadline_overruns"] == counters["requests"]
        assert payload["resilience"]["trips"] >= 1

    def test_bad_fault_rate_is_clean_error(self, predictor_path, capsys):
        rc = main(
            ["serve", "--predictor", predictor_path, "--fault-rate", "1.5"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestUserInputErrors:
    """All user-input failures exit 1 with a one-line message."""

    def test_missing_predictor_file(self, capsys):
        rc = main(["serve", "--predictor", "/nonexistent/predictor.json"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "predictor.json" in err

    def test_corrupt_predictor_bundle(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text('{"db": {"profiles": [')  # truncated
        rc = main(["serve", "--predictor", str(path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt.json" in err

    def test_wrong_schema_bundle(self, tmp_path, capsys):
        path = tmp_path / "notabundle.json"
        path.write_text('{"something": "else"}')
        rc = main(["predict", "--predictor", str(path), "--colocation", "Dota2"])
        assert rc == 1
        assert "not a predictor bundle" in capsys.readouterr().err

    def test_bad_trace_config_values(self, predictor_path, capsys):
        rc = main(
            ["serve", "--predictor", predictor_path, "--arrival-rate", "-1"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


def _strip_wall_clock(snapshot):
    snapshot = json.loads(json.dumps(snapshot))
    snapshot.pop("histograms", None)
    snapshot.pop("caches", None)  # hit *rates* ride wall-clock-free, but
    if "labeled" in snapshot:     # keep the comparison to logical state
        snapshot["labeled"].pop("histograms", None)
    return snapshot


class TestServeSharded:
    """The ``--shards`` / ``--rebalance-interval`` serving flags."""

    def test_rebalance_interval_requires_shards(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--rebalance-interval",
                "64",
            ]
        )
        assert rc == 2
        assert "--shards" in capsys.readouterr().err

    def test_shards_one_matches_unsharded(self, predictor_path, capsys):
        argv = [
            "serve",
            "--predictor",
            predictor_path,
            "--requests",
            "120",
            "--arrival-rate",
            "4.0",
            "--trace-seed",
            "3",
        ]
        assert main(argv) == 0
        unsharded = json.loads(capsys.readouterr().out)
        assert main(argv + ["--shards", "1"]) == 0
        sharded = json.loads(capsys.readouterr().out)

        assert sharded["n_shards"] == 1
        assert sharded["n_sessions"] == unsharded["n_sessions"]
        (shard,) = sharded["shards"]
        assert _strip_wall_clock(shard["telemetry"]) == _strip_wall_clock(
            unsharded["telemetry"]
        )
        assert shard["placements"] == unsharded["placements"]

    def test_sharded_run_with_rebalancing(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "200",
                "--arrival-rate",
                "4.0",
                "--mixed-resolutions",
                "--trace-seed",
                "3",
                "--shards",
                "4",
                "--rebalance-interval",
                "32",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_shards"] == 4
        assert sum(payload["shard_sessions"]) == 200
        assert payload["config"]["shards"] == 4
        assert payload["config"]["rebalance_interval"] == 32
        assert payload["coordinator"]["counters"]["routed"] == 200
        assert payload["telemetry"]["counters"].get("policy_errors", 0) == 0

    def test_sharded_trace_files(self, predictor_path, tmp_path, capsys):
        trace_out = tmp_path / "trace.jsonl"
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "60",
                "--shards",
                "2",
                "--trace-out",
                str(trace_out),
                "--trace-format",
                "jsonl",
                "--out",
                str(tmp_path / "report.json"),
            ]
        )
        assert rc == 0
        # Coordinator spans in the named file, shard spans in siblings.
        coordinator_spans = [
            json.loads(line) for line in trace_out.read_text().splitlines() if line
        ]
        assert {s["name"] for s in coordinator_spans} == {"route"}
        for shard_id in range(2):
            shard_file = tmp_path / f"trace.shard{shard_id}.jsonl"
            assert shard_file.exists()
            names = {
                json.loads(line)["name"]
                for line in shard_file.read_text().splitlines()
                if line
            }
            assert "request" in names


class TestServeShardChaos:
    """Shard-chaos serving flags: validation and the supervised path."""

    @pytest.mark.parametrize(
        "flags,needle",
        [
            (["--shards", "0"], "--shards"),
            (["--shards", "-2"], "--shards"),
            (["--shards", "2", "--rebalance-interval", "0"], "--rebalance-interval"),
            (["--shards", "2", "--rebalance-interval", "-5"], "--rebalance-interval"),
            (["--shards", "2", "--shard-crash-rate", "1.5"], "--shard-crash-rate"),
            (["--shards", "2", "--shard-crash-rate", "-0.1"], "--shard-crash-rate"),
            (["--shards", "2", "--shard-flake-rate", "2"], "--shard-flake-rate"),
            (["--shards", "2", "--shard-outage-chunks", "0"], "--shard-outage-chunks"),
            (["--shards", "2", "--min-healthy-shards", "0"], "--min-healthy-shards"),
        ],
    )
    def test_bad_values_exit_1_with_one_line_error(
        self, predictor_path, capsys, flags, needle
    ):
        rc = main(["serve", "--predictor", predictor_path, *flags])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle.lstrip("-").replace("-", "_") in err.replace("-", "_")
        assert len(err.strip().splitlines()) == 1  # no traceback

    def test_malformed_outage_window_exit_1(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--shards",
                "2",
                "--shard-outage-window",
                "nope",
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err and "nope" in err

    def test_chaos_flags_require_shards(self, predictor_path, capsys):
        rc = main(
            ["serve", "--predictor", predictor_path, "--shard-crash-rate", "0.1"]
        )
        assert rc == 2
        assert "--shards" in capsys.readouterr().err

    def test_supervised_run_conserves_sessions(self, predictor_path, capsys):
        rc = main(
            [
                "serve",
                "--predictor",
                predictor_path,
                "--requests",
                "200",
                "--arrival-rate",
                "4.0",
                "--mixed-resolutions",
                "--trace-seed",
                "3",
                "--shards",
                "4",
                "--rebalance-interval",
                "32",
                "--shard-outage-window",
                "0:30:1@1",
                "--shard-outage-chunks",
                "2",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        coord = payload["coordinator"]["counters"]
        assert coord["routed"] == 200
        assert coord["sessions_lost"] == 0
        assert sum(payload["shard_sessions"]) == 200
        assert coord["ring_ejections"] >= 1
        assert coord["ring_readmissions"] >= 1
        assert payload["supervision"]["health"]["1"] == "healthy"
        assert payload["config"]["shard_chaos"]["outage_chunks"] == 2
        assert payload["config"]["min_healthy_shards"] == 1
        assert payload["telemetry"]["counters"].get("policy_errors", 0) == 0

    def test_zero_chaos_matches_unsupervised_sharded(self, predictor_path, capsys):
        argv = [
            "serve",
            "--predictor",
            predictor_path,
            "--requests",
            "120",
            "--arrival-rate",
            "4.0",
            "--trace-seed",
            "3",
            "--shards",
            "2",
        ]
        assert main(argv) == 0
        plain = json.loads(capsys.readouterr().out)
        assert (
            main(argv + ["--shard-crash-rate", "0", "--shard-flake-rate", "0"]) == 0
        )
        zeroed = json.loads(capsys.readouterr().out)
        assert "supervision" not in zeroed
        assert _strip_wall_clock(zeroed["telemetry"]) == _strip_wall_clock(
            plain["telemetry"]
        )
        assert _strip_wall_clock(zeroed["coordinator"]) == _strip_wall_clock(
            plain["coordinator"]
        )
