"""Tests for the kernel machines."""

import numpy as np
import pytest

from repro.ml import SVC, SVR, StandardScaler
from repro.ml.svm import linear_kernel, rbf_kernel


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        A = np.random.default_rng(0).normal(size=(10, 3))
        K = rbf_kernel(A, A, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_psd(self):
        A = np.random.default_rng(1).normal(size=(15, 4))
        K = rbf_kernel(A, A, gamma=1.0)
        assert np.allclose(K, K.T)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-8

    def test_rbf_decays_with_distance(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.1, 0.0], [3.0, 0.0]])
        K = rbf_kernel(a, b, gamma=1.0)
        assert K[0, 0] > K[0, 1]

    def test_linear_kernel(self):
        A = np.array([[1.0, 2.0]])
        B = np.array([[3.0, 4.0]])
        assert linear_kernel(A, B)[0, 0] == pytest.approx(11.0)


class TestSVC:
    def _ring_data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        y = (np.linalg.norm(X, axis=1) > 1.2).astype(int)
        return X, y

    def test_learns_nonlinear_boundary(self):
        X, y = self._ring_data()
        model = SVC(C=10.0).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_linear_kernel_on_linear_data(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 3))
        y = (X @ np.array([1.0, -2.0, 0.5]) > 0).astype(int)
        model = SVC(C=10.0, kernel="linear").fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_decision_function_sign(self):
        X, y = self._ring_data(100)
        model = SVC(C=5.0).fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X) == model.classes_[1], scores >= 0)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            SVC().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(kernel="poly")
        with pytest.raises(ValueError):
            SVC(gamma=-1.0).fit(np.zeros((4, 2)) + np.arange(4)[:, None], [0, 0, 1, 1])

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.zeros((1, 2)))


class TestSVR:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-3, 3, size=(200, 1))
        y = np.sin(X[:, 0])
        scaler = StandardScaler()
        Xs = scaler.fit_transform(X)
        model = SVR(C=50.0, epsilon=0.01).fit(Xs, y)
        rmse = np.sqrt(np.mean((model.predict(Xs) - y) ** 2))
        assert rmse < 0.1

    def test_epsilon_tube_tolerance(self):
        # With a huge epsilon every residual is inside the tube and the
        # regularizer pulls the function flat to the intercept.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = SVR(C=1.0, epsilon=10.0).fit(X, y)
        assert np.std(model.predict(X)) < 0.2

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            SVR(smoothing=0.0)

    def test_gamma_scale_on_constant_features(self):
        X = np.ones((10, 2))
        y = np.arange(10, dtype=float)
        model = SVR().fit(X, y)  # var == 0 -> gamma falls back to 1.0
        assert model.gamma_ == 1.0
