"""Property-based tests for packing and assignment conservation laws."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.scheduling import GameRequest, pack_requests
from repro.placement.assignment import assign_max_fps

R = Resolution(1920, 1080)
GAMES = ["a", "b", "c", "d", "e"]

request_counts = st.dictionaries(
    st.sampled_from(GAMES), st.integers(0, 12), min_size=1, max_size=5
)
feasible_sets = st.lists(
    st.lists(st.sampled_from(GAMES), min_size=2, max_size=4, unique=True),
    max_size=8,
)


class _FlatPredictor:
    """Toy predictor: FPS = 100 / colocation size for every member."""

    def predict_fps(self, spec):
        return np.full(spec.size, 100.0 / spec.size)


class TestPackingProperties:
    @given(request_counts, feasible_sets)
    @settings(max_examples=60, deadline=None)
    def test_every_request_served_exactly_once(self, counts, feasible_names):
        requests = [
            GameRequest(name, R) for name, k in counts.items() for _ in range(k)
        ]
        if not requests:
            return
        feasible = [
            ColocationSpec(tuple((n, R) for n in names))
            for names in feasible_names
        ]
        result = pack_requests(requests, feasible)
        served = Counter(
            (name, res) for spec in result.servers for name, res in spec.entries
        )
        wanted = Counter((r.game, r.resolution) for r in requests)
        assert served == wanted

    @given(request_counts, feasible_sets)
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_dedicated(self, counts, feasible_names):
        requests = [
            GameRequest(name, R) for name, k in counts.items() for _ in range(k)
        ]
        if not requests:
            return
        feasible = [
            ColocationSpec(tuple((n, R) for n in names))
            for names in feasible_names
        ]
        result = pack_requests(requests, feasible)
        assert result.n_servers <= len(requests)

    @given(request_counts)
    @settings(max_examples=30, deadline=None)
    def test_no_feasible_colocations_is_dedicated(self, counts):
        requests = [
            GameRequest(name, R) for name, k in counts.items() for _ in range(k)
        ]
        if not requests:
            return
        result = pack_requests(requests, [])
        assert result.n_servers == len(requests)


class TestAssignmentProperties:
    @given(
        st.lists(st.sampled_from(GAMES), min_size=1, max_size=16),
        st.integers(5, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_requests_placed_within_capacity(self, games, n_servers):
        requests = [GameRequest(g, R) for g in games]
        if len(requests) > n_servers * 4:
            return
        result = assign_max_fps(requests, _FlatPredictor(), n_servers)
        assert result.n_requests == len(requests)
        assert all(len(sig) <= 4 for sig in result.servers)
        placed = Counter(entry for sig in result.servers for entry in sig)
        wanted = Counter((r.game, r.resolution) for r in requests)
        assert placed == wanted

    @given(st.lists(st.sampled_from(GAMES), min_size=2, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_flat_predictor_spreads(self, games):
        # With FPS = 100/size, spreading maximizes the total: every request
        # should land on its own server when capacity allows.
        requests = [GameRequest(g, R) for g in games]
        result = assign_max_fps(requests, _FlatPredictor(), n_servers=len(games))
        assert all(len(sig) == 1 for sig in result.occupied())
