"""Tests for the frame-time simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import Resolution
from repro.simulator.frames import (
    fps_from_frame_times,
    scene_complexity,
    simulate_frame_times,
)


@pytest.fixture(scope="module")
def spec(catalog):
    return catalog.get("H1Z1")


R1080 = Resolution(1920, 1080)


class TestSceneComplexity:
    def test_mean_near_one(self):
        rng = np.random.default_rng(0)
        c = scene_complexity(0.95, 0.1, 50_000, rng)
        assert c.mean() == pytest.approx(1.0, rel=0.05)

    def test_positive(self):
        rng = np.random.default_rng(1)
        assert np.all(scene_complexity(0.9, 0.3, 1000, rng) > 0)

    def test_zero_sigma_constant(self):
        rng = np.random.default_rng(2)
        assert np.array_equal(scene_complexity(0.9, 0.0, 10, rng), np.ones(10))

    def test_autocorrelated(self):
        rng = np.random.default_rng(3)
        c = np.log(scene_complexity(0.95, 0.1, 20_000, rng))
        r1 = np.corrcoef(c[:-1], c[1:])[0, 1]
        assert r1 > 0.85

    @pytest.mark.parametrize("rho,sigma,n", [(1.0, 0.1, 10), (0.9, -0.1, 10), (0.9, 0.1, 0)])
    def test_invalid_params(self, rho, sigma, n):
        with pytest.raises(ValueError):
            scene_complexity(rho, sigma, n, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        a = scene_complexity(0.9, 0.1, 100, np.random.default_rng(5))
        b = scene_complexity(0.9, 0.1, 100, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestSimulateFrameTimes:
    def test_shape_and_positivity(self, spec):
        times = simulate_frame_times(
            spec, R1080, n_frames=100, rng=np.random.default_rng(0)
        )
        assert times.shape == (100,)
        assert np.all(times > 0)

    def test_mean_near_nominal(self, spec):
        times = simulate_frame_times(
            spec, R1080, n_frames=20_000, rng=np.random.default_rng(0)
        )
        nominal = spec.solo_frame_time_ms(R1080)
        assert times.mean() == pytest.approx(nominal, rel=0.15)

    def test_inflations_slow_frames(self, spec):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        base = simulate_frame_times(spec, R1080, n_frames=500, rng=rng_a)
        inflated = simulate_frame_times(
            spec, R1080, stage_inflations=(2.0, 2.0, 2.0), n_frames=500, rng=rng_b
        )
        assert np.all(inflated >= base)

    def test_thrash_multiplies(self, spec):
        a = simulate_frame_times(
            spec, R1080, n_frames=100, rng=np.random.default_rng(1)
        )
        b = simulate_frame_times(
            spec, R1080, thrash=3.0, n_frames=100, rng=np.random.default_rng(1)
        )
        assert np.allclose(b, 3.0 * a)

    def test_server_scales_speed_up(self, spec):
        slow = simulate_frame_times(
            spec, R1080, n_frames=100, rng=np.random.default_rng(2)
        )
        fast = simulate_frame_times(
            spec,
            R1080,
            n_frames=100,
            rng=np.random.default_rng(2),
            server_scales=(2.0, 2.0, 2.0),
        )
        assert np.all(fast <= slow)


class TestFpsFromFrameTimes:
    def test_constant_frames(self):
        assert fps_from_frame_times(np.full(100, 10.0)) == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fps_from_frame_times(np.array([]))

    @given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_harmonic_mean_property(self, times):
        # FPS equals 1000 / (arithmetic mean frame time).
        times = np.asarray(times)
        assert fps_from_frame_times(times) == pytest.approx(
            1000.0 / times.mean()
        )
