"""Tests for the experiment runner CLI plumbing."""

import types

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.runner import main, run_all


def _fake_module(name: str):
    mod = types.SimpleNamespace()
    mod.run = lambda lab: {"name": name}
    mod.render = lambda result: f"rendered {result['name']}"
    return mod


@pytest.fixture()
def patched_runner(monkeypatch, minilab):
    monkeypatch.setattr(
        runner_module, "EXPERIMENTS", (("figA", _fake_module("A")),)
    )
    monkeypatch.setattr(
        runner_module, "EXTENSIONS", (("extB", _fake_module("B")),)
    )
    monkeypatch.setattr(runner_module, "get_lab", lambda: minilab)


class TestRunAll:
    def test_runs_experiments(self, patched_runner, minilab, capsys):
        rendered = run_all(minilab)
        assert rendered == {"figA": "rendered A"}
        assert "figA" in capsys.readouterr().out

    def test_extensions_opt_in(self, patched_runner, minilab):
        rendered = run_all(minilab, echo=False, include_extensions=True)
        assert set(rendered) == {"figA", "extB"}


class TestMain:
    def test_writes_markdown(self, patched_runner, tmp_path, capsys):
        out = tmp_path / "results.md"
        assert main([str(out)]) == 0
        text = out.read_text()
        assert "## figA" in text
        assert "rendered A" in text
        assert "extB" not in text

    def test_extensions_flag(self, patched_runner, tmp_path):
        out = tmp_path / "results.md"
        assert main(["--extensions", str(out)]) == 0
        assert "## extB" in out.read_text()
