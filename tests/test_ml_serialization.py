"""Tests for estimator serialization round-trips."""

import numpy as np
import pytest

from repro.ml import (
    SVC,
    SVR,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml.serialization import (
    estimator_from_dict,
    estimator_to_dict,
    load_model,
    save_model,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 5))
    y_reg = np.sin(X[:, 0]) + X[:, 1]
    y_cls = (y_reg > 0).astype(int)
    Xte = rng.normal(size=(30, 5))
    return X, y_reg, y_cls, Xte


REGRESSORS = [
    DecisionTreeRegressor(max_depth=5),
    RandomForestRegressor(n_estimators=5, max_depth=5, seed=1),
    GradientBoostingRegressor(n_estimators=15),
    SVR(C=5.0),
]
CLASSIFIERS = [
    DecisionTreeClassifier(max_depth=5),
    RandomForestClassifier(n_estimators=5, max_depth=5, seed=1),
    GradientBoostingClassifier(n_estimators=15),
    SVC(C=5.0),
]


class TestRoundTrips:
    @pytest.mark.parametrize("estimator", REGRESSORS, ids=lambda e: type(e).__name__)
    def test_regressor_round_trip(self, estimator, data):
        X, y_reg, _, Xte = data
        model = estimator.clone().fit(X, y_reg)
        restored = estimator_from_dict(estimator_to_dict(model))
        assert np.allclose(restored.predict(Xte), model.predict(Xte))

    @pytest.mark.parametrize("estimator", CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_classifier_round_trip(self, estimator, data):
        X, _, y_cls, Xte = data
        model = estimator.clone().fit(X, y_cls)
        restored = estimator_from_dict(estimator_to_dict(model))
        assert np.array_equal(restored.predict(Xte), model.predict(Xte))

    def test_scaler_round_trip(self, data):
        X, *_ = data
        scaler = StandardScaler().fit(X)
        restored = estimator_from_dict(estimator_to_dict(scaler))
        assert np.allclose(restored.transform(X), scaler.transform(X))

    def test_string_labels_survive(self, data):
        X, _, y_cls, Xte = data
        labels = np.where(y_cls == 1, "yes", "no")
        model = DecisionTreeClassifier(max_depth=4).fit(X, labels)
        restored = estimator_from_dict(estimator_to_dict(model))
        assert np.array_equal(restored.predict(Xte), model.predict(Xte))
        assert restored.predict(Xte).dtype.kind == "U"

    def test_file_round_trip(self, data, tmp_path):
        X, y_reg, _, Xte = data
        model = GradientBoostingRegressor(n_estimators=10).fit(X, y_reg)
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert np.allclose(restored.predict(Xte), model.predict(Xte))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            estimator_to_dict(DecisionTreeRegressor())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimator_to_dict(object())
        with pytest.raises(TypeError):
            estimator_from_dict({"type": "MysteryModel", "params": {}, "state": {}})


class TestPredictorBundle:
    def test_save_load_predictor(self, minilab, tmp_path):
        path = tmp_path / "predictor.json"
        minilab.predictor.save(path)
        from repro.core import InterferencePredictor
        from repro.core.training import ColocationSpec
        from repro.games.resolution import Resolution

        restored = InterferencePredictor.load(path)
        spec = ColocationSpec(
            tuple((n, Resolution(1920, 1080)) for n in minilab.names[:3])
        )
        assert np.allclose(
            restored.predict_fps(spec), minilab.predictor.predict_fps(spec)
        )
        assert np.array_equal(
            restored.predict_feasible(spec, 60.0),
            minilab.predictor.predict_feasible(spec, 60.0),
        )
