"""Tests for metrics, preprocessing and model selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    KFold,
    StandardScaler,
    accuracy_score,
    confusion_counts,
    cross_val_score,
    mean_absolute_error,
    mean_relative_error,
    precision_score,
    r2_score,
    recall_score,
    relative_errors,
    train_test_split,
)
from repro.ml.metrics import f1_score
from repro.ml.tree import DecisionTreeRegressor


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_confusion_counts(self):
        c = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert c == {"tp": 1, "fp": 1, "fn": 1, "tn": 1}

    def test_precision_recall(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_cases(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [1, 1]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 0, 0]
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestRegressionMetrics:
    def test_relative_errors_is_papers_formula(self):
        errors = relative_errors([0.5, 1.0], [0.4, 1.1])
        assert np.allclose(errors, [0.2, 0.1])

    def test_mean_relative_error(self):
        assert mean_relative_error([0.5, 1.0], [0.4, 1.1]) == pytest.approx(0.15)

    def test_relative_error_needs_positive_actual(self):
        with pytest.raises(ValueError):
            relative_errors([0.0, 1.0], [0.1, 1.0])

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=30))
    @settings(max_examples=25)
    def test_perfect_prediction_zero_error(self, values):
        assert mean_relative_error(values, values) == 0.0


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(3.0, 5.0, size=(200, 4))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xs = StandardScaler().fit_transform(X)
        assert np.isfinite(Xs).all()
        assert np.allclose(Xs[:, 0], 0.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)) + np.arange(5)[:, None])
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.zeros((2, 4)))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40, dtype=float).reshape(-1, 2)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(
            X, y, test_size=0.25, rng=np.random.default_rng(0)
        )
        assert len(Xte) == 5 and len(Xtr) == 15
        assert len(ytr) == 15 and len(yte) == 5

    def test_partition_is_exact(self):
        X = np.arange(30, dtype=float).reshape(-1, 1)
        y = np.arange(30)
        Xtr, Xte, ytr, yte = train_test_split(X, y, rng=np.random.default_rng(1))
        assert sorted(np.concatenate([ytr, yte]).tolist()) == list(range(30))

    def test_invalid_test_size(self):
        X, y = np.zeros((10, 1)) + np.arange(10)[:, None], np.arange(10)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)


class TestKFold:
    def test_folds_partition(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train, test in kf.split(20):
            assert set(train) | set(test) == set(range(20))
            assert not set(train) & set(test)
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_cross_val_score_runs(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = X[:, 0] * 2.0
        scores = cross_val_score(
            DecisionTreeRegressor(max_depth=4),
            X,
            y,
            metric=lambda a, b: float(np.mean(np.abs(a - b))),
            cv=KFold(n_splits=3, seed=0),
        )
        assert scores.shape == (3,)
        assert np.all(scores >= 0)
