"""Integration tests for the sharded serving tier.

Three pillars, matching the guarantees the sharding package documents:

* **Parity** — one shard behind the coordinator replays the unsharded
  broker byte-for-byte: stripped of wall-clock histograms, its telemetry
  snapshot and every placement decision are identical to a hand-built
  :class:`~repro.serving.RequestBroker` stack.
* **Determinism** — a multi-shard run with rebalancing enabled is a pure
  function of the seed: same trace, same migrations, same merged
  telemetry, whether shards drain in parallel or serially.
* **Rebalancing** — the occupancy loop moves sessions hot → cold within
  its caps, books them as migrations (never crashes), and leaves
  balanced fleets alone.
"""

import json

import pytest

from repro.games.resolution import Resolution
from repro.obs.metrics import Telemetry, snapshot_to_prometheus
from repro.obs.snapshots import validate_prometheus
from repro.placement.fleet import Session
from repro.placement.policies import DedicatedPolicy
from repro.scheduling import generate_sessions
from repro.serving.admission import AdmissionController
from repro.serving.broker import RequestBroker
from repro.sharding import (
    RebalanceConfig,
    Rebalancer,
    ShardConfig,
    ShardedBroker,
    ShardRouter,
    build_shard_brokers,
)

R = Resolution(1920, 1080)


def _strip_wall_clock(snapshot: dict) -> dict:
    """Everything except latency histograms must be run-to-run identical."""
    snapshot = json.loads(json.dumps(snapshot))
    snapshot.pop("histograms", None)
    if "labeled" in snapshot:
        snapshot["labeled"].pop("histograms", None)
    return snapshot


@pytest.fixture(scope="module")
def predictor(minilab):
    return minilab.predictor


@pytest.fixture(scope="module")
def trace(predictor):
    return generate_sessions(
        predictor.db.names(),
        240,
        resolutions=[Resolution(1920, 1080), Resolution(1280, 720)],
        seed=5,
    )


class TestBuildShardBrokers:
    def test_shard_count_validated(self, predictor):
        with pytest.raises(ValueError, match="n_shards"):
            build_shard_brokers(predictor, 0)

    def test_tracer_count_validated(self, predictor):
        from repro.obs.tracing import Tracer

        with pytest.raises(ValueError, match="tracers"):
            build_shard_brokers(predictor, 2, tracers=[Tracer(enabled=True)])

    def test_shards_are_isolated(self, predictor):
        brokers = build_shard_brokers(predictor, 3)
        telemetries = [b.controller.telemetry for b in brokers]
        assert len({id(t) for t in telemetries}) == 3


class TestShardsOneParity:
    """``--shards 1`` is the unsharded broker, byte for byte."""

    @staticmethod
    def _unsharded(predictor, sessions):
        from repro.placement import BreakerConfig, PredictionCache, build_policy

        telemetry = Telemetry()
        policy, fallback = build_policy(
            "cm-feasible",
            predictor=predictor,
            qos=60.0,
            cache=PredictionCache(4096),
            max_colocation=4,
        )
        controller = AdmissionController(
            policy,
            fallback=fallback,
            telemetry=telemetry,
            breaker=BreakerConfig(failure_threshold=0.5),
        )
        return RequestBroker(controller).run(sessions)

    def test_identical_telemetry_and_decisions(self, predictor, trace):
        reference = self._unsharded(predictor, trace)
        sharded = ShardedBroker(
            build_shard_brokers(predictor, 1, ShardConfig()), chunk_size=64
        ).run(trace)
        (shard_report,) = sharded.shard_reports
        assert _strip_wall_clock(shard_report.telemetry) == _strip_wall_clock(
            reference.telemetry
        )
        assert shard_report.choices() == reference.choices()
        assert shard_report.server_ids() == reference.server_ids()
        assert sharded.peak_servers == reference.peak_servers

    def test_merged_totals_match_the_single_shard(self, predictor, trace):
        sharded = ShardedBroker(
            build_shard_brokers(predictor, 1, ShardConfig())
        ).run(trace)
        (shard_report,) = sharded.shard_reports
        assert sharded.telemetry["counters"] == shard_report.telemetry["counters"]
        # Every labeled child — including already-labeled series like the
        # per-policy decision counters — gains the shard label.
        for entries in sharded.telemetry["labeled"]["counters"].values():
            assert all(e["labels"]["shard"] == "0" for e in entries)


def _run_sharded(predictor, trace, *, parallel=True):
    coordinator = Telemetry()
    rebalancer = Rebalancer(
        RebalanceConfig(interval=64, hot_factor=1.2, max_moves=2),
        telemetry=coordinator,
    )
    broker = ShardedBroker(
        build_shard_brokers(predictor, 4, ShardConfig(seed=7)),
        rebalancer=rebalancer,
        telemetry=coordinator,
        parallel=parallel,
    )
    return broker.run(trace)


class TestShardedRun:
    def test_covers_every_session(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        assert report.n_shards == 4
        assert report.n_sessions == len(trace)
        assert sum(report.shard_sessions) == len(trace)
        assert report.coordinator["counters"]["routed"] == len(trace)

    def test_same_seed_same_run(self, predictor, trace):
        a = _run_sharded(predictor, trace)
        b = _run_sharded(predictor, trace)
        assert a.migrations == b.migrations > 0
        assert a.sessions_migrated == b.sessions_migrated > 0
        assert a.shard_sessions == b.shard_sessions
        assert _strip_wall_clock(a.telemetry) == _strip_wall_clock(b.telemetry)
        assert _strip_wall_clock(a.coordinator) == _strip_wall_clock(b.coordinator)
        for ra, rb in zip(a.shard_reports, b.shard_reports):
            assert ra.choices() == rb.choices()
            assert ra.server_ids() == rb.server_ids()

    def test_migrations_are_not_crashes(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        assert report.migrations > 0
        assert "server_crashes" not in report.telemetry["counters"]
        assert report.coordinator["counters"]["rebalance_cycles"] > 0

    def test_parallel_matches_serial(self, predictor, trace):
        parallel = _run_sharded(predictor, trace, parallel=True)
        serial = _run_sharded(predictor, trace, parallel=False)
        assert _strip_wall_clock(parallel.telemetry) == _strip_wall_clock(
            serial.telemetry
        )
        for rp, rs in zip(parallel.shard_reports, serial.shard_reports):
            assert rp.choices() == rs.choices()

    def test_merged_counters_are_shard_sums(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        merged = report.telemetry["counters"]
        assert merged  # non-degenerate
        for name, value in merged.items():
            assert value == sum(
                r.telemetry["counters"].get(name, 0) for r in report.shard_reports
            ), name

    def test_labeled_series_cover_every_shard(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        requests = report.telemetry["labeled"]["counters"]["requests"]
        assert [e["labels"] for e in requests] == [
            {"shard": str(i)} for i in range(4)
        ]
        assert sum(e["value"] for e in requests) == report.telemetry["counters"][
            "requests"
        ]

    def test_prometheus_exposition_round_trip(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        text = snapshot_to_prometheus(report.telemetry)
        assert validate_prometheus(text) == []
        assert 'shard="0"' in text and 'shard="3"' in text

    def test_report_serializes(self, predictor, trace):
        report = _run_sharded(predictor, trace)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_shards"] == 4
        assert payload["n_sessions"] == len(trace)
        assert len(payload["shards"]) == 4
        assert payload["migrations"] == report.migrations
        assert payload["peak_servers"] == sum(
            r.peak_servers for r in report.shard_reports
        )


def _dedicated_broker() -> RequestBroker:
    return RequestBroker(AdmissionController(DedicatedPolicy()))


def _fill(broker: RequestBroker, n: int, *, start_index: int = 0) -> None:
    """Submit ``n`` long-lived sessions (dedicated: one server each)."""
    for i in range(n):
        broker.submit(
            Session(game="g", resolution=R, arrival=0.001 * i, duration=1e6),
            start_index + i,
        )


class TestRebalancer:
    def test_config_validated(self):
        with pytest.raises(ValueError, match="interval"):
            RebalanceConfig(interval=-1)
        with pytest.raises(ValueError, match="hot_factor"):
            RebalanceConfig(hot_factor=0.9)
        with pytest.raises(ValueError, match="max_moves"):
            RebalanceConfig(max_moves=0)

    def test_moves_hot_to_cold_until_under_threshold(self):
        hot, cold = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(hot, 6)
        coordinator = Telemetry()
        rebalancer = Rebalancer(
            RebalanceConfig(hot_factor=1.5, max_moves=4), telemetry=coordinator
        )
        moved = rebalancer.rebalance([hot, cold], now=1.0, index=5)
        # mean is 3, threshold 4.5: two single-session servers move
        # (6 -> 5 -> 4), then 4 <= 4.5 stops the cycle within max_moves.
        assert moved == 2
        assert hot.fleet.n_live == 4
        assert cold.fleet.n_live == 2
        counters = coordinator.snapshot()["counters"]
        assert counters["rebalance_cycles"] == 1
        assert counters["rebalance_migrations"] == 2
        assert counters["rebalance_sessions_moved"] == 2

    def test_ledger_is_migrations_not_crashes(self):
        hot, cold = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(hot, 6)
        Rebalancer(RebalanceConfig(hot_factor=1.5, max_moves=4)).rebalance(
            [hot, cold], now=1.0, index=5
        )
        out = hot.finish().telemetry["counters"]
        inn = cold.finish().telemetry["counters"]
        assert out["migrations"] == 2
        assert out["sessions_migrated_out"] == 2
        assert inn["sessions_migrated_in"] == 2
        assert "server_crashes" not in out
        assert "server_crashes" not in inn

    def test_destination_records_are_marked_migrated(self):
        hot, cold = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(hot, 6)
        Rebalancer(RebalanceConfig(hot_factor=1.5, max_moves=4)).rebalance(
            [hot, cold], now=1.0, index=5
        )
        cold_report = cold.finish()
        assert cold_report.n_arrivals == 0  # migrations are not arrivals
        assert cold_report.placements == []
        assert [p.migrated for p in cold_report.migrations] == [True, True]

    def test_max_moves_caps_a_cycle(self):
        hot, cold = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(hot, 10)
        moved = Rebalancer(
            RebalanceConfig(hot_factor=1.0, max_moves=3)
        ).rebalance([hot, cold], now=1.0, index=9)
        assert moved == 3
        assert (hot.fleet.n_live, cold.fleet.n_live) == (7, 3)

    def test_balanced_fleet_is_left_alone(self):
        a, b = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(a, 3)
        _fill(b, 3, start_index=3)
        coordinator = Telemetry()
        rebalancer = Rebalancer(RebalanceConfig(), telemetry=coordinator)
        assert rebalancer.rebalance([a, b], now=1.0, index=5) == 0
        counters = coordinator.snapshot()["counters"]
        assert counters["rebalance_cycles"] == 1
        assert "rebalance_migrations" not in counters

    def test_mildly_hot_fleet_is_left_alone(self):
        a, b = _dedicated_broker().start(), _dedicated_broker().start()
        _fill(a, 4)
        _fill(b, 2, start_index=4)
        # mean 3, threshold 4.5, hottest at 4: under the factor.
        assert Rebalancer(RebalanceConfig()).rebalance([a, b], now=1.0, index=5) == 0

    def test_empty_and_single_shard_noop(self):
        solo = _dedicated_broker().start()
        _fill(solo, 5)
        assert Rebalancer().rebalance([solo], now=1.0, index=4) == 0
        empty_a, empty_b = _dedicated_broker().start(), _dedicated_broker().start()
        assert Rebalancer().rebalance([empty_a, empty_b], now=0.0, index=0) == 0


class TestShardedBrokerWiring:
    def test_needs_brokers(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardedBroker([])

    def test_router_shard_count_must_match(self):
        brokers = [_dedicated_broker() for _ in range(3)]
        with pytest.raises(ValueError, match="router covers"):
            ShardedBroker(brokers, router=ShardRouter(2))

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ShardedBroker([_dedicated_broker()], chunk_size=0)

    def test_chunk_size_follows_rebalance_interval(self):
        brokers = [_dedicated_broker(), _dedicated_broker()]
        rebalancer = Rebalancer(RebalanceConfig(interval=64))
        assert ShardedBroker(brokers, rebalancer=rebalancer).chunk_size == 64
        explicit = ShardedBroker(brokers, rebalancer=rebalancer, chunk_size=7)
        assert explicit.chunk_size == 7

    def test_presorted_stream_matches_sorted_run(self):
        games = ["a", "b", "c", "d", "e", "f"]
        trace = [
            Session(game=games[i % 6], resolution=R, arrival=0.1 * i, duration=5.0)
            for i in range(50)
        ]

        def run(**kwargs):
            return ShardedBroker(
                [_dedicated_broker(), _dedicated_broker()], chunk_size=8
            ).run(trace, **kwargs)

        materialized = run()
        streamed = run(presorted=True)
        assert streamed.shard_sessions == materialized.shard_sessions
        for rs, rm in zip(streamed.shard_reports, materialized.shard_reports):
            assert rs.choices() == rm.choices()
