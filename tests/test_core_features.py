"""Tests for the Eq. 5 aggregate-intensity transform and model inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    AGGREGATE_DIM,
    aggregate_intensity,
    cm_feature_names,
    cm_feature_vector,
    rm_feature_names,
    rm_feature_vector,
)

intensity_vectors = st.lists(
    st.lists(st.floats(0.0, 2.0), min_size=7, max_size=7).map(np.array),
    min_size=1,
    max_size=5,
)


class TestAggregateIntensity:
    def test_dimension(self):
        out = aggregate_intensity([np.full(7, 0.5)])
        assert out.shape == (AGGREGATE_DIM,)
        assert AGGREGATE_DIM == 15

    def test_size_is_first_entry(self):
        out = aggregate_intensity([np.zeros(7), np.zeros(7), np.zeros(7)])
        assert out[0] == 3.0

    def test_single_corunner_zero_variance(self):
        out = aggregate_intensity([np.full(7, 0.4)])
        assert np.allclose(out[1::2], 0.4)
        assert np.allclose(out[2::2], 0.0)

    def test_papers_variance_formula(self):
        # var_r = (1/|G|) * sqrt(sum (I - mean)^2), exactly as printed.
        a = np.zeros(7)
        b = np.ones(7)
        out = aggregate_intensity([a, b])
        expected = np.sqrt(0.25 + 0.25) / 2.0
        assert np.allclose(out[2::2], expected)

    def test_not_a_plain_sum(self):
        # Observation 5: the transform must not reduce to summation.
        single = aggregate_intensity([np.full(7, 0.5)])
        double = aggregate_intensity([np.full(7, 0.5), np.full(7, 0.5)])
        assert not np.allclose(double[1::2], 2 * single[1::2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_intensity([])

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="7"):
            aggregate_intensity([np.zeros(5)])

    @given(intensity_vectors)
    @settings(max_examples=30)
    def test_permutation_invariant(self, vectors):
        out1 = aggregate_intensity(vectors)
        out2 = aggregate_intensity(vectors[::-1])
        assert np.allclose(out1, out2)

    @given(intensity_vectors)
    @settings(max_examples=30)
    def test_mean_bounded_by_inputs(self, vectors):
        out = aggregate_intensity(vectors)
        stack = np.vstack(vectors)
        assert np.all(out[1::2] <= stack.max(axis=0) + 1e-12)
        assert np.all(out[1::2] >= stack.min(axis=0) - 1e-12)


class TestFeatureVectors:
    def test_rm_layout(self):
        sens = np.linspace(0, 1, 77)
        x = rm_feature_vector(sens, [np.full(7, 0.3)])
        assert x.shape == (77 + 15,)
        assert np.allclose(x[:77], sens)

    def test_cm_layout(self):
        sens = np.zeros(77)
        x = cm_feature_vector(60.0, 120.0, sens, [np.full(7, 0.3)])
        assert x.shape == (3 + 77 + 15,)
        assert x[0] == 60.0
        assert x[1] == 120.0
        assert x[2] == pytest.approx(0.5)  # required degradation ratio

    def test_cm_rejects_non_positive_solo(self):
        with pytest.raises(ValueError, match="solo_fps"):
            cm_feature_vector(60.0, 0.0, np.zeros(77), [np.zeros(7)])

    def test_names_align_with_vectors(self):
        sens = np.zeros(77)
        rm = rm_feature_vector(sens, [np.zeros(7)])
        cm = cm_feature_vector(60.0, 100.0, sens, [np.zeros(7)])
        assert len(rm_feature_names(11)) == rm.shape[0]
        assert len(cm_feature_names(11)) == cm.shape[0]

    def test_names_contain_resources(self):
        names = rm_feature_names(11)
        assert "sens[GPU-CE][0]" in names
        assert "intensity_mean[LLC]" in names
        assert "n_corunners" in names
