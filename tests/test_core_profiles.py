"""Tests for SensitivityCurve and GameProfile resolution laws."""

import pytest

from repro.core.profiles import GameProfile, SensitivityCurve
from repro.games.resolution import Resolution
from repro.hardware.resources import Resource, ResourceVector

R720 = Resolution(1280, 720)
R900 = Resolution(1600, 900)
R1080 = Resolution(1920, 1080)


def _curve(res=Resource.GPU_CE, degr=(1.0, 0.8, 0.5)):
    return SensitivityCurve(
        resource=res, pressures=(0.0, 0.5, 1.0), degradations=degr
    )


def _profile(fps=(120.0, 90.0), intensities=((0.2,) * 7, (0.4,) * 7)):
    return GameProfile(
        name="g",
        sensitivity={r: _curve(r) for r in Resource},
        solo_fps={R720: fps[0], R1080: fps[1]},
        intensity={
            R720: ResourceVector(list(intensities[0])),
            R1080: ResourceVector(list(intensities[1])),
        },
        demand={
            R720: ResourceVector([0.3] * 7),
            R1080: ResourceVector([0.5] * 7),
        },
        cpu_mem_gb=1.0,
        gpu_mem_gb=0.5,
    )


class TestSensitivityCurve:
    def test_interpolation(self):
        curve = _curve()
        assert curve.value_at(0.25) == pytest.approx(0.9)
        assert curve.value_at(0.0) == 1.0
        assert curve.value_at(1.0) == 0.5

    def test_max_suffering(self):
        assert _curve().max_suffering == pytest.approx(0.5)

    def test_at_full_pressure(self):
        assert _curve().at_full_pressure == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            SensitivityCurve(Resource.LLC, (0.0, 1.0), (1.0,))
        with pytest.raises(ValueError, match="sorted"):
            SensitivityCurve(Resource.LLC, (1.0, 0.0), (1.0, 0.5))
        with pytest.raises(ValueError, match="2 samples"):
            SensitivityCurve(Resource.LLC, (0.0,), (1.0,))
        with pytest.raises(ValueError, match=">= 0"):
            SensitivityCurve(Resource.LLC, (0.0, 1.0), (1.0, -0.2))

    def test_dict_round_trip(self):
        curve = _curve()
        assert SensitivityCurve.from_dict(curve.to_dict()) == curve


class TestGameProfileResolutionLaws:
    def test_solo_fps_interpolates(self):
        profile = _profile()
        mid = profile.solo_fps_at(R900)
        assert 90.0 < mid < 120.0

    def test_solo_fps_exact_at_profiled_points(self):
        profile = _profile()
        assert profile.solo_fps_at(R720) == pytest.approx(120.0)
        assert profile.solo_fps_at(R1080) == pytest.approx(90.0)

    def test_solo_fps_clamps_beyond_range(self):
        profile = _profile()
        # 4K is beyond the profiled range: clamp, never extrapolate to <= 0.
        assert profile.solo_fps_at(Resolution(3840, 2160)) == pytest.approx(90.0)

    def test_intensity_cpu_side_average(self):
        profile = _profile()
        vec = profile.intensity_at(R900)
        for res in (Resource.CPU_CE, Resource.MEM_BW, Resource.LLC):
            assert vec[res] == pytest.approx(0.3)  # mean of 0.2 / 0.4

    def test_intensity_gpu_side_interpolates(self):
        profile = _profile()
        vec = profile.intensity_at(R900)
        assert 0.2 < vec[Resource.GPU_CE] < 0.4

    def test_demand_clipped_to_unit(self):
        profile = _profile()
        vec = profile.demand_at(R1080)
        assert all(0.0 <= v <= 1.0 for v in vec)

    def test_sensitivity_vector_flat_layout(self):
        profile = _profile()
        flat = profile.sensitivity_vector()
        assert flat.shape == (7 * 3,)
        assert flat[0] == 1.0 and flat[2] == 0.5  # first curve endpoints

    def test_validation_needs_two_resolutions(self):
        with pytest.raises(ValueError, match="2 profiled"):
            GameProfile(
                name="bad",
                sensitivity={r: _curve(r) for r in Resource},
                solo_fps={R720: 100.0},
                intensity={R720: ResourceVector([0.1] * 7)},
                demand={R720: ResourceVector([0.1] * 7)},
                cpu_mem_gb=1.0,
                gpu_mem_gb=1.0,
            )

    def test_validation_resolution_sets_must_match(self):
        with pytest.raises(ValueError, match="match"):
            GameProfile(
                name="bad",
                sensitivity={r: _curve(r) for r in Resource},
                solo_fps={R720: 100.0, R1080: 80.0},
                intensity={R720: ResourceVector([0.1] * 7)},
                demand={R720: ResourceVector([0.1] * 7)},
                cpu_mem_gb=1.0,
                gpu_mem_gb=1.0,
            )

    def test_missing_sensitivity_rejected(self):
        sens = {r: _curve(r) for r in Resource}
        del sens[Resource.PCIE_BW]
        with pytest.raises(ValueError, match="PCIe-BW"):
            GameProfile(
                name="bad",
                sensitivity=sens,
                solo_fps={R720: 100.0, R1080: 80.0},
                intensity={
                    R720: ResourceVector([0.1] * 7),
                    R1080: ResourceVector([0.1] * 7),
                },
                demand={
                    R720: ResourceVector([0.1] * 7),
                    R1080: ResourceVector([0.1] * 7),
                },
                cpu_mem_gb=1.0,
                gpu_mem_gb=1.0,
            )

    def test_dict_round_trip(self):
        profile = _profile()
        restored = GameProfile.from_dict(profile.to_dict())
        assert restored.name == profile.name
        assert restored.solo_fps == profile.solo_fps
        assert restored.intensity == profile.intensity
        assert restored.sensitivity == profile.sensitivity
