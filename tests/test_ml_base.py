"""Tests for the estimator base protocol and input validation."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor, check_array, check_X_y
from repro.ml.base import BaseEstimator


class TestCheckArray:
    def test_promotes_1d_to_row(self):
        out = check_array(np.arange(3.0))
        assert out.shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_rejects_inf(self):
        bad = np.zeros((2, 2))
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="NaN or infinity"):
            check_array(bad)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="features"):
            check_array(np.zeros((2, 2, 2)), name="features")


class TestCheckXy:
    def test_aligned_pass_through(self):
        X, y = check_X_y([[1.0, 2.0]], [3.0])
        assert X.shape == (1, 2)
        assert y.shape == (1,)

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.zeros((2, 2)), np.zeros((2, 1)))

    def test_rejects_nan_y(self):
        with pytest.raises(ValueError):
            check_X_y(np.zeros((2, 2)), [np.nan, 1.0])

    def test_allows_string_y(self):
        _, y = check_X_y(np.zeros((2, 2)), np.array(["a", "b"]))
        assert list(y) == ["a", "b"]


class TestBaseEstimator:
    def test_get_params_excludes_fitted_state(self):
        model = DecisionTreeRegressor(max_depth=3)
        model.fit(np.arange(10.0).reshape(-1, 1), np.arange(10.0))
        params = model.get_params()
        assert "max_depth" in params
        assert not any(k.endswith("_") for k in params)

    def test_clone_overrides(self):
        model = DecisionTreeRegressor(max_depth=3, seed=7)
        clone = model.clone(max_depth=9)
        assert clone.max_depth == 9
        assert clone.seed == 7

    def test_repr_lists_params(self):
        model = DecisionTreeRegressor(max_depth=3)
        assert "max_depth=3" in repr(model)

    def test_check_fitted_error(self):
        class Dummy(BaseEstimator):
            pass

        with pytest.raises(RuntimeError, match="fit"):
            Dummy()._check_fitted("state_")
