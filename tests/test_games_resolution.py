"""Tests for resolutions."""

import pytest

from repro.games.resolution import (
    PRESET_RESOLUTIONS,
    REFERENCE_RESOLUTION,
    Resolution,
)


class TestResolution:
    def test_pixels(self):
        assert Resolution(1920, 1080).pixels == 2073600

    def test_megapixels(self):
        assert Resolution(1000, 1000).megapixels == pytest.approx(1.0)

    def test_pixel_ratio_default_reference(self):
        assert REFERENCE_RESOLUTION.pixel_ratio() == pytest.approx(1.0)
        assert Resolution(1280, 720).pixel_ratio() == pytest.approx(
            (1280 * 720) / (1920 * 1080)
        )

    def test_pixel_ratio_custom_reference(self):
        assert Resolution(200, 100).pixel_ratio(Resolution(100, 100)) == 2.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Resolution(0, 1080)

    def test_ordering(self):
        assert Resolution(1280, 720) < Resolution(1920, 1080)

    def test_str(self):
        assert str(Resolution(1280, 720)) == "1280x720"

    def test_dict_round_trip(self):
        r = Resolution(1600, 900)
        assert Resolution.from_dict(r.to_dict()) == r

    def test_hashable(self):
        assert len({Resolution(1, 1), Resolution(1, 1)}) == 1


class TestPresets:
    def test_reference_in_presets(self):
        assert REFERENCE_RESOLUTION in PRESET_RESOLUTIONS

    def test_presets_sorted_distinct(self):
        pixels = [r.pixels for r in PRESET_RESOLUTIONS]
        assert pixels == sorted(pixels)
        assert len(set(pixels)) == len(pixels)
