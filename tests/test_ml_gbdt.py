"""Tests for gradient boosting."""

import numpy as np
import pytest

from repro.ml import GradientBoostingClassifier, GradientBoostingRegressor


def _regression_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 4))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] + 0.05 * rng.normal(size=n)
    return X, y


class TestGradientBoostingRegressor:
    def test_train_loss_decreases(self):
        X, y = _regression_data()
        model = GradientBoostingRegressor(n_estimators=50).fit(X, y)
        losses = model.train_losses_
        assert losses[-1] < losses[0]
        assert losses[-1] < 0.05

    def test_more_stages_better_train_fit(self):
        X, y = _regression_data()
        few = GradientBoostingRegressor(n_estimators=10).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=100).fit(X, y)
        assert many.train_losses_[-1] < few.train_losses_[-1]

    def test_generalizes(self):
        X, y = _regression_data()
        Xte, yte = _regression_data(seed=1)
        model = GradientBoostingRegressor(n_estimators=150).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(Xte) - yte) ** 2))
        assert rmse < 0.2

    def test_init_is_mean(self):
        X, y = _regression_data(100)
        model = GradientBoostingRegressor(n_estimators=1).fit(X, y)
        assert model.init_ == pytest.approx(y.mean())

    def test_subsample_runs(self):
        X, y = _regression_data(200)
        model = GradientBoostingRegressor(n_estimators=20, subsample=0.5).fit(X, y)
        assert model.predict(X).shape == (200,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"subsample": 0.0},
        ],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(**kwargs)


class TestGradientBoostingClassifier:
    def _data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 4))
        y = ((X[:, 0] ** 2 + X[:, 1] ** 2) > 1.5).astype(int)
        return X, y

    def test_learns_nonlinear_boundary(self):
        X, y = self._data()
        Xte, yte = self._data(seed=1)
        model = GradientBoostingClassifier(n_estimators=150).fit(X, y)
        assert np.mean(model.predict(Xte) == yte) > 0.9

    def test_log_loss_decreases(self):
        X, y = self._data()
        model = GradientBoostingClassifier(n_estimators=50).fit(X, y)
        assert model.train_losses_[-1] < model.train_losses_[0]

    def test_predict_proba_valid(self):
        X, y = self._data(100)
        model = GradientBoostingClassifier(n_estimators=20).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_decision_function_sign_matches_prediction(self):
        X, y = self._data(100)
        model = GradientBoostingClassifier(n_estimators=20).fit(X, y)
        scores = model.decision_function(X)
        pred = model.predict(X)
        assert np.array_equal(pred == model.classes_[1], scores >= 0)

    def test_string_labels(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(100, 2))
        y = np.where(X[:, 0] > 0, "pass", "fail")
        model = GradientBoostingClassifier(n_estimators=30).fit(X, y)
        assert set(model.predict(X)) <= {"pass", "fail"}

    def test_multiclass_rejected(self):
        X = np.zeros((6, 2))
        y = np.array([0, 1, 2, 0, 1, 2])
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(X, y)

    def test_newton_leaf_updates_beat_plain_means(self):
        # With Newton updates a small ensemble should already be accurate.
        X, y = self._data()
        model = GradientBoostingClassifier(n_estimators=30).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9
