"""Tests for sensitivity-curve shapes, including vectorized evaluation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.games.curves import (
    CurveShape,
    SensitivityShape,
    pack_shapes,
    vector_response,
)

shape_strategy = st.one_of(
    st.builds(SensitivityShape, st.floats(0.0, 3.0), st.just(CurveShape.LINEAR)),
    st.builds(
        SensitivityShape,
        st.floats(0.0, 3.0),
        st.just(CurveShape.CONCAVE),
        st.floats(0.1, 0.95),
    ),
    st.builds(
        SensitivityShape,
        st.floats(0.0, 3.0),
        st.just(CurveShape.CONVEX),
        st.floats(1.05, 10.0),
    ),
    st.builds(
        SensitivityShape,
        st.floats(0.0, 3.0),
        st.just(CurveShape.SIGMOID),
        st.floats(1.0, 20.0),
    ),
    st.builds(
        SensitivityShape,
        st.floats(0.0, 3.0),
        st.just(CurveShape.CLIFF),
        st.floats(0.05, 0.9),
    ),
)


class TestSensitivityShape:
    def test_normalization_endpoints(self):
        for shape in (
            SensitivityShape(1.0, CurveShape.LINEAR),
            SensitivityShape(1.0, CurveShape.CONCAVE, 0.5),
            SensitivityShape(1.0, CurveShape.CONVEX, 2.0),
            SensitivityShape(1.0, CurveShape.SIGMOID, 8.0),
            SensitivityShape(1.0, CurveShape.CLIFF, 0.4),
        ):
            assert shape.response(0.0) == pytest.approx(0.0, abs=1e-12)
            assert shape.response(1.0) == pytest.approx(1.0, abs=1e-12)

    @given(shape_strategy, st.floats(0.0, 1.0))
    def test_response_bounded(self, shape, p):
        assert -1e-12 <= shape.response(p) <= 1.0 + 1e-12

    @given(shape_strategy, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_monotone(self, shape, p1, p2):
        lo, hi = min(p1, p2), max(p1, p2)
        assert shape.response(lo) <= shape.response(hi) + 1e-9

    @given(shape_strategy, st.floats(0.0, 1.0))
    def test_inflation_is_one_plus_scaled_response(self, shape, p):
        assert shape.inflation(p) == pytest.approx(
            1.0 + shape.magnitude * shape.response(p)
        )

    def test_pressure_clipped(self):
        shape = SensitivityShape(1.0, CurveShape.LINEAR)
        assert shape.response(2.0) == 1.0
        assert shape.response(-1.0) == 0.0

    def test_array_input(self):
        shape = SensitivityShape(2.0, CurveShape.CONVEX, 2.0)
        out = shape.response(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.25, 1.0])

    def test_insensitive(self):
        shape = SensitivityShape.insensitive()
        assert shape.inflation(1.0) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SensitivityShape(-0.1, CurveShape.LINEAR)
        with pytest.raises(ValueError):
            SensitivityShape(1.0, CurveShape.CONCAVE, 1.5)
        with pytest.raises(ValueError):
            SensitivityShape(1.0, CurveShape.CLIFF, 0.99)

    def test_cliff_flat_before_threshold(self):
        shape = SensitivityShape(1.0, CurveShape.CLIFF, 0.5)
        assert shape.response(0.4) == 0.0
        assert shape.response(0.6) > 0.0

    def test_dict_round_trip(self):
        shape = SensitivityShape(1.5, CurveShape.SIGMOID, 7.0)
        assert SensitivityShape.from_dict(shape.to_dict()) == shape


class TestVectorResponse:
    @given(st.lists(shape_strategy, min_size=1, max_size=7), st.floats(0.0, 1.0))
    def test_matches_scalar_path(self, shapes, p):
        mag, code, param = pack_shapes(shapes)
        pressures = np.full(len(shapes), p)
        vec = vector_response(pressures, code, param)
        scalar = np.array([s.response(p) for s in shapes])
        assert np.allclose(vec, scalar, atol=1e-12)

    def test_mixed_codes(self):
        shapes = [
            SensitivityShape(1.0, CurveShape.LINEAR),
            SensitivityShape(1.0, CurveShape.SIGMOID, 6.0),
            SensitivityShape(1.0, CurveShape.CLIFF, 0.3),
        ]
        mag, code, param = pack_shapes(shapes)
        out = vector_response(np.array([0.5, 0.5, 0.5]), code, param)
        assert out[0] == pytest.approx(0.5)
        assert 0.0 < out[1] < 1.0
        assert 0.0 < out[2] < 1.0
