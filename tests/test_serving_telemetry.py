"""Tests for serving telemetry counters and latency histograms."""

import json

import pytest

from repro.serving.telemetry import Counter, LatencyHistogram, Telemetry


class TestCounter:
    def test_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)


class TestLatencyHistogram:
    def test_bucket_assignment(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            h.observe(value)
        assert h.count == 4
        snapshot = h.to_dict()
        counts = [b["count"] for b in snapshot["buckets"]]
        assert counts == [1, 1, 1, 1]  # one per bucket + one overflow
        assert snapshot["buckets"][-1]["le_s"] is None

    def test_mean_and_total(self):
        h = LatencyHistogram("lat", buckets=(1.0,))
        h.observe(0.2)
        h.observe(0.4)
        assert h.total == pytest.approx(0.6)
        assert h.mean == pytest.approx(0.3)

    def test_quantile_estimates(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            h.observe(0.0005)
        h.observe(0.05)
        assert h.quantile(0.5) == pytest.approx(0.001)
        assert h.quantile(1.0) == pytest.approx(0.1)

    def test_empty_quantile(self):
        assert LatencyHistogram("lat").quantile(0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=(0.1, 0.01))
        h = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestTelemetry:
    def test_create_on_first_use(self):
        t = Telemetry()
        t.counter("requests").inc()
        assert t.counter("requests").value == 1

    def test_timer_context(self):
        t = Telemetry()
        with t.time("decision_latency_s"):
            pass
        assert t.histogram("decision_latency_s").count == 1

    def test_snapshot_json_serializable(self):
        t = Telemetry()
        t.counter("requests").inc(3)
        t.histogram("lat").observe(0.002)
        snapshot = t.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["counters"]["requests"] == 3
        assert parsed["histograms"]["lat"]["count"] == 1
