"""Tests for serving telemetry counters and latency histograms."""

import json
import math

import pytest

from repro.obs.metrics import (
    MAX_EVENTS,
    Counter,
    Gauge,
    LatencyHistogram,
    Telemetry,
    merge_snapshots,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)


class TestLatencyHistogram:
    def test_bucket_assignment(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            h.observe(value)
        assert h.count == 4
        snapshot = h.to_dict()
        counts = [b["count"] for b in snapshot["buckets"]]
        assert counts == [1, 1, 1, 1]  # one per bucket + one overflow
        assert snapshot["buckets"][-1]["le_s"] is None

    def test_mean_and_total(self):
        h = LatencyHistogram("lat", buckets=(1.0,))
        h.observe(0.2)
        h.observe(0.4)
        assert h.total == pytest.approx(0.6)
        assert h.mean == pytest.approx(0.3)

    def test_quantile_estimates(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            h.observe(0.0005)
        h.observe(0.05)
        assert h.quantile(0.5) == pytest.approx(0.001)
        assert h.quantile(1.0) == pytest.approx(0.1)

    def test_empty_quantile(self):
        assert LatencyHistogram("lat").quantile(0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=(0.1, 0.01))
        h = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestTelemetry:
    def test_create_on_first_use(self):
        t = Telemetry()
        t.counter("requests").inc()
        assert t.counter("requests").value == 1

    def test_timer_context(self):
        t = Telemetry()
        with t.time("decision_latency_s"):
            pass
        assert t.histogram("decision_latency_s").count == 1

    def test_snapshot_json_serializable(self):
        t = Telemetry()
        t.counter("requests").inc(3)
        t.histogram("lat").observe(0.002)
        snapshot = t.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["counters"]["requests"] == 3
        assert parsed["histograms"]["lat"]["count"] == 1

    def test_snapshot_keeps_legacy_keys_and_adds_new_ones(self):
        t = Telemetry()
        t.counter("requests").inc()
        t.histogram("lat").observe(0.002)
        t.event("marker")
        snapshot = t.snapshot()
        # Old consumers keep working: the original keys hold their
        # original shapes; gauges and labeled children live in new keys.
        assert set(snapshot) == {
            "counters",
            "histograms",
            "events",
            "events_dropped",
            "gauges",
            "labeled",
        }
        assert snapshot["counters"] == {"requests": 1}
        assert snapshot["events"] == [{"event": "marker"}]
        assert snapshot["events_dropped"] == 0
        assert snapshot["labeled"] == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("open_servers")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_registered_in_snapshot(self):
        t = Telemetry()
        t.gauge("open_servers").set(3)
        assert t.snapshot()["gauges"] == {"open_servers": 3.0}


class TestLabels:
    def test_children_keyed_by_label_set(self):
        t = Telemetry()
        t.counter("decisions", policy="cm-feasible").inc(2)
        t.counter("decisions", policy="max-fps").inc()
        # Label order must not matter for identity.
        t.counter("decisions", mode="normal", policy="cm-feasible").inc()
        t.counter("decisions", policy="cm-feasible", mode="normal").inc()
        children = t.snapshot()["labeled"]["counters"]["decisions"]
        by_labels = {tuple(sorted(c["labels"].items())): c["value"] for c in children}
        assert by_labels == {
            (("policy", "cm-feasible"),): 2,
            (("policy", "max-fps"),): 1,
            (("mode", "normal"), ("policy", "cm-feasible")): 2,
        }

    def test_labeled_and_unlabeled_are_distinct(self):
        t = Telemetry()
        t.counter("decisions").inc(7)
        t.counter("decisions", policy="cm-feasible").inc()
        snapshot = t.snapshot()
        assert snapshot["counters"]["decisions"] == 7
        assert snapshot["labeled"]["counters"]["decisions"][0]["value"] == 1

    def test_labeled_histogram_and_timer(self):
        t = Telemetry()
        with t.time("train_s", model="rm"):
            pass
        t.histogram("train_s", model="rm").observe(0.25)
        children = t.snapshot()["labeled"]["histograms"]["train_s"]
        assert len(children) == 1
        assert children[0]["count"] == 2


class TestEventEviction:
    def test_cap_is_exact(self):
        t = Telemetry()
        for i in range(MAX_EVENTS + 25):
            t.event("tick", i=i)
        snapshot = t.snapshot()
        assert len(snapshot["events"]) == MAX_EVENTS
        assert snapshot["events_dropped"] == 25
        # Oldest dropped, newest retained.
        assert snapshot["events"][0]["i"] == 25
        assert snapshot["events"][-1]["i"] == MAX_EVENTS + 24

    def test_no_drops_below_cap(self):
        t = Telemetry()
        for _ in range(10):
            t.event("tick")
        assert t.snapshot()["events_dropped"] == 0


class TestOverflow:
    def test_quantile_in_overflow_returns_inf(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01))
        h.observe(0.5)
        assert h.quantile(0.5) == math.inf
        assert h.overflow_count == 1
        assert h.to_dict()["overflow_count"] == 1
        assert h.to_dict()["p99_s"] == math.inf

    def test_finite_quantiles_unaffected(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01))
        for _ in range(99):
            h.observe(0.0005)
        h.observe(0.5)
        assert h.quantile(0.5) == pytest.approx(0.001)
        assert h.quantile(1.0) == math.inf


class TestMergeAndFromDict:
    def test_from_dict_round_trip(self):
        h = LatencyHistogram("lat", buckets=(0.001, 0.01))
        for value in (0.0005, 0.005, 0.5):
            h.observe(value)
        rebuilt = LatencyHistogram.from_dict("lat", h.to_dict())
        assert rebuilt.to_dict() == h.to_dict()

    def test_merge_snapshots_counters_and_buckets(self):
        a, b = Telemetry(), Telemetry()
        a.counter("requests").inc(2)
        b.counter("requests").inc(3)
        a.histogram("lat").observe(0.25)
        b.histogram("lat").observe(0.5)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["requests"] == 5
        assert merged["histograms"]["lat"]["count"] == 2
        assert merged["histograms"]["lat"]["total_s"] == pytest.approx(0.75)


class TestPrometheusExposition:
    def test_renders_all_metric_kinds(self):
        t = Telemetry()
        t.counter("requests").inc(4)
        t.counter("decisions", policy="cm-feasible").inc()
        t.gauge("open_servers").set(2)
        t.histogram("lat", buckets=(0.001, 0.01)).observe(0.005)
        text = t.to_prometheus()
        assert "# TYPE requests_total counter" in text
        assert "requests_total 4" in text
        assert 'decisions_total{policy="cm-feasible"} 1' in text
        assert "open_servers 2" in text
        assert 'lat_bucket{le="0.001"} 0' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.005" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")
