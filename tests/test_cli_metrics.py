"""Tests for the ``repro metrics`` subcommand family."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_prometheus
from repro.obs.metrics import Telemetry


def _snapshot(observations):
    t = Telemetry()
    for seconds in observations:
        t.counter("requests").inc()
        t.counter("decisions", policy="cm-feasible").inc()
        t.histogram("decision_latency_s").observe(seconds)
    t.gauge("open_servers").set(len(observations))
    return t.snapshot()


@pytest.fixture()
def snap_path(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_snapshot([0.25, 0.5, 0.125])))
    return str(path)


@pytest.fixture()
def regressed_path(tmp_path):
    # Same workload with a fattened tail: p99 lands two buckets higher.
    path = tmp_path / "regressed.json"
    path.write_text(json.dumps(_snapshot([0.25, 0.5, 0.9])))
    return str(path)


class TestSummary:
    def test_single_file(self, snap_path, capsys):
        assert main(["metrics", "summary", snap_path]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "decision_latency_s" in out

    def test_multiple_files_titled(self, snap_path, regressed_path, capsys):
        assert main(["metrics", "summary", snap_path, regressed_path]) == 0
        out = capsys.readouterr().out
        assert f"== {snap_path}" in out
        assert f"== {regressed_path}" in out

    def test_missing_file_exits_1(self, capsys):
        assert main(["metrics", "summary", "/nonexistent/snap.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDiff:
    def test_identical_exits_zero(self, snap_path, capsys):
        rc = main(
            ["metrics", "diff", snap_path, snap_path, "--fail-on", "p99_s:+20%"]
        )
        assert rc == 0
        assert "no differences" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, snap_path, regressed_path, capsys):
        rc = main(
            [
                "metrics",
                "diff",
                snap_path,
                regressed_path,
                "--fail-on",
                "p99_s:+20%",
            ]
        )
        assert rc != 0
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "decision_latency_s" in captured.out

    def test_no_gate_reports_but_exits_zero(self, snap_path, regressed_path):
        assert main(["metrics", "diff", snap_path, regressed_path]) == 0

    def test_bad_fail_spec_exits_1(self, snap_path, capsys):
        rc = main(
            ["metrics", "diff", snap_path, snap_path, "--fail-on", "p99_s:20"]
        )
        assert rc == 1
        assert "fail-on" in capsys.readouterr().err


class TestMerge:
    def test_counters_add(self, snap_path, tmp_path, capsys):
        out = tmp_path / "merged.json"
        rc = main(
            ["metrics", "merge", snap_path, snap_path, "--out", str(out)]
        )
        assert rc == 0
        merged = json.loads(out.read_text())
        assert merged["counters"]["requests"] == 6
        assert merged["histograms"]["decision_latency_s"]["count"] == 6

    def test_stdout_default(self, snap_path, capsys):
        assert main(["metrics", "merge", snap_path, snap_path]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["counters"]["requests"] == 6

    def test_single_file_rejected(self, snap_path, capsys):
        assert main(["metrics", "merge", snap_path]) == 1
        assert "at least two" in capsys.readouterr().err


class TestExport:
    def test_prometheus(self, snap_path, capsys):
        rc = main(["metrics", "export", snap_path, "--format", "prometheus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert validate_prometheus(out) == []
        assert "requests_total 3" in out

    def test_chrome_trace_from_jsonl(self, tmp_path, capsys):
        from repro.obs import TickClock, Tracer

        tracer = Tracer(clock=TickClock())
        with tracer.span("request", index=0):
            with tracer.span("predict"):
                pass
        trace_path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(trace_path)
        out_path = tmp_path / "trace.json"
        rc = main(
            [
                "metrics",
                "export",
                str(trace_path),
                "--format",
                "chrome-trace",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc == tracer.to_chrome_trace()

    def test_chrome_trace_rejects_snapshot_input(self, snap_path, capsys):
        rc = main(["metrics", "export", snap_path, "--format", "chrome-trace"])
        assert rc == 1
        assert "span trace" in capsys.readouterr().err
