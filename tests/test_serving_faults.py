"""Chaos suite: fault injection, degraded modes, and server crashes.

The load-bearing properties: a fully zero-rate injector is a perfect
pass-through (placement parity with the offline simulator is untouched),
every injected failure mode is absorbed by the admission fallback chain
(the broker never sees an exception), the breaker state machine walks
NORMAL -> DEGRADED -> CONSERVATIVE and back deterministically, and server
crashes re-admit every evicted session.
"""

import json

import pytest

from repro.scheduling.dynamic import cm_feasible_policy, generate_sessions
from repro.serving import (
    AdmissionController,
    BreakerConfig,
    DedicatedPolicy,
    FaultConfig,
    FaultInjector,
    InjectedFault,
    Mode,
    OfflinePolicyAdapter,
    PredictionCache,
    RequestBroker,
    WorstFitPolicy,
    build_policy,
)

CHAOS_BREAKER = BreakerConfig(
    failure_threshold=0.3, window=10, min_requests=5, cooldown=10, probe_window=2
)


class _FailsFirstN:
    """Primary policy that errors for its first ``n`` calls, then heals."""

    name = "flaky"

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def select(self, signatures, session):
        self.calls += 1
        if self.calls <= self.n:
            raise RuntimeError("still broken")
        return None


class _AlwaysFails:
    name = "broken"

    def select(self, signatures, session):
        raise RuntimeError("boom")


class _OpensServer:
    name = "opener"

    def select(self, signatures, session):
        return None


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="error_rate"):
            FaultConfig(error_rate=1.5)
        with pytest.raises(ValueError, match="latency_s"):
            FaultConfig(latency_s=-1)

    def test_active(self):
        assert not FaultConfig().active
        assert FaultConfig(corrupt_rate=0.1).active

    def test_to_dict_json(self):
        config = FaultConfig(error_rate=0.2, seed=7)
        assert json.loads(json.dumps(config.to_dict()))["error_rate"] == 0.2


class TestInjectorDeterminism:
    def test_same_seed_same_sequence(self):
        a = FaultInjector(FaultConfig(error_rate=0.3, seed=42))
        b = FaultInjector(FaultConfig(error_rate=0.3, seed=42))
        assert [a.fire("error") for _ in range(200)] == [
            b.fire("error") for _ in range(200)
        ]

    def test_zero_rate_never_fires_and_skips_rng(self):
        injector = FaultInjector(FaultConfig(seed=1))
        assert not any(injector.fire("error") for _ in range(100))
        # The RNG was never consumed: enabling one kind later still sees
        # the virgin stream (same draws as a fresh injector).
        probe = FaultInjector(FaultConfig(error_rate=1.0, seed=1))
        assert probe.fire("error")

    def test_fire_counts_telemetry(self):
        injector = FaultInjector(FaultConfig(error_rate=1.0, stale_rate=1.0))
        injector.fire("error")
        injector.fire("stale")
        counters = injector.telemetry.snapshot()["counters"]
        assert counters["faults_injected"] == 2
        assert counters["faults_error"] == 1
        assert counters["faults_stale"] == 1


class TestWrappers:
    def test_policy_error_injection(self):
        policy = FaultInjector(FaultConfig(error_rate=1.0)).wrap_policy(
            _OpensServer()
        )
        assert policy.name == "opener"
        with pytest.raises(InjectedFault):
            policy.select([], None)

    def test_policy_corrupt_returns_out_of_range(self):
        policy = FaultInjector(FaultConfig(corrupt_rate=1.0)).wrap_policy(
            _OpensServer()
        )
        assert policy.select([(), ()], None) == 3  # len + 1: out of range

    def test_predictor_error_injection(self, minilab):
        wrapped = FaultInjector(FaultConfig(error_rate=1.0)).wrap_predictor(
            minilab.predictor
        )
        with pytest.raises(InjectedFault):
            wrapped.colocations_feasible([], 60.0)
        # Non-prediction attributes delegate untouched.
        assert wrapped.db is minilab.predictor.db

    def test_predictor_stale_returns_previous_answer(self, minilab):
        from repro.core import ColocationSpec
        from repro.games.resolution import Resolution

        r = Resolution(1920, 1080)
        specs_a = [ColocationSpec(((minilab.names[0], r), (minilab.names[1], r)))]
        specs_b = [ColocationSpec(((minilab.names[2], r), (minilab.names[3], r)))]
        wrapped = FaultInjector(FaultConfig(stale_rate=1.0)).wrap_predictor(
            minilab.predictor
        )
        first = wrapped.predict_fps_batch(specs_a)  # nothing stale yet: computed
        second = wrapped.predict_fps_batch(specs_b)  # stale: the previous answer
        assert second is first

    def test_predictor_corrupt_flips_verdicts(self, minilab):
        from repro.core import ColocationSpec
        from repro.games.resolution import Resolution

        r = Resolution(1920, 1080)
        specs = [ColocationSpec(((minilab.names[0], r), (minilab.names[1], r)))]
        clean = minilab.predictor.colocations_feasible(specs, 60.0)
        wrapped = FaultInjector(FaultConfig(corrupt_rate=1.0)).wrap_predictor(
            minilab.predictor
        )
        corrupted = wrapped.colocations_feasible(specs, 60.0)
        assert list(corrupted) == [not v for v in clean]

    def test_cache_stale_loses_entry(self):
        cache = PredictionCache(16)
        wrapped = FaultInjector(FaultConfig(stale_rate=1.0)).wrap_cache(cache)
        wrapped.put(("k",), True)
        assert wrapped.lookup(("k",), "gone") == "gone"
        assert cache.invalidations == 1
        assert ("k",) not in cache

    def test_cache_corrupt_on_put(self):
        cache = PredictionCache(16)
        wrapped = FaultInjector(FaultConfig(corrupt_rate=1.0)).wrap_cache(cache)
        wrapped.put(("k",), True)
        assert cache.lookup(("k",)) is False
        assert wrapped.stats()["size"] == 1  # stats delegate to the real cache


class TestDegradedModes:
    def test_trip_degrade_recover(self):
        config = BreakerConfig(
            failure_threshold=0.5, window=4, min_requests=2, cooldown=3, probe_window=2
        )
        controller = AdmissionController(
            _FailsFirstN(4), fallback=_OpensServer(), breaker=config
        )
        for _ in range(25):
            decision = controller.decide([], object())
            assert decision.server is None  # opener/dedicated both open
        assert controller.mode is Mode.NORMAL  # healed and recovered
        snap = controller.resilience_snapshot()
        assert snap["trips"] >= 1
        assert snap["recoveries"] >= 1
        modes = [t["to"] for t in snap["mode_transitions"]]
        assert "degraded" in modes
        assert modes[-1] == "normal"
        # Breaker transitions are mirrored into the telemetry event log.
        events = controller.telemetry.snapshot()["events"]
        assert any(e["event"] == "breaker_transition" for e in events)
        assert any(e["event"] == "mode_transition" for e in events)

    def test_conservative_when_both_policies_fail(self):
        config = BreakerConfig(
            failure_threshold=0.5, window=4, min_requests=2, cooldown=5, probe_window=2
        )
        controller = AdmissionController(
            _AlwaysFails(), fallback=_AlwaysFails(), breaker=config
        )
        saw_conservative = False
        for _ in range(30):
            decision = controller.decide([], object())
            assert decision.server is None
            assert decision.policy == "dedicated"
            saw_conservative = saw_conservative or controller.mode is Mode.CONSERVATIVE
        assert saw_conservative
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["degraded_decisions"] > 0
        assert counters["conservative_decisions"] > 0

    def test_deadline_overruns_trip_breaker(self):
        config = BreakerConfig(
            failure_threshold=0.5, window=4, min_requests=2, cooldown=50, probe_window=2
        )
        controller = AdmissionController(
            _OpensServer(),
            fallback=_OpensServer(),
            breaker=config,
            decision_deadline_s=1e-12,  # everything overruns
        )
        for _ in range(10):
            assert controller.decide([], object()).server is None
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["deadline_overruns"] == counters["requests"]
        assert controller.mode is not Mode.NORMAL

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="decision_deadline_s"):
            AdmissionController(_OpensServer(), decision_deadline_s=0)

    def test_no_breaker_keeps_legacy_shape(self):
        controller = AdmissionController(_OpensServer())
        controller.decide([], object())
        snap = controller.resilience_snapshot()
        assert snap["enabled"] is False
        assert snap["mode"] == "normal"
        assert snap["breakers"] == {}


class TestServerCrashes:
    def test_crash_rate_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            RequestBroker(AdmissionController(DedicatedPolicy()), crash_rate=1.5)

    def test_crashes_evict_and_readmit(self, minilab):
        sessions = generate_sessions(
            minilab.names[:4], 80, arrival_rate=6.0, seed=21
        )
        controller = AdmissionController(DedicatedPolicy())
        broker = RequestBroker(controller, crash_rate=0.25, crash_seed=21)
        report = broker.run(sessions)
        counters = report.telemetry["counters"]
        assert counters["server_crashes"] > 0
        assert counters["sessions_evicted"] == counters["readmissions"]
        assert len(report.readmissions) == counters["readmissions"]
        assert all(r.readmitted for r in report.readmissions)
        assert not any(p.readmitted for p in report.placements)
        assert report.resilience["server_crashes"] == counters["server_crashes"]
        events = [
            e for e in report.telemetry["events"] if e["event"] == "server_crash"
        ]
        assert len(events) == counters["server_crashes"]
        # Every arrival and every re-admission got a server.
        assert report.n_sessions == 80
        assert all(p.server_id >= 0 for p in report.placements)
        assert all(r.server_id >= 0 for r in report.readmissions)

    def test_crash_determinism(self, minilab):
        sessions = generate_sessions(minilab.names[:4], 60, seed=22)

        def run():
            broker = RequestBroker(
                AdmissionController(DedicatedPolicy()),
                crash_rate=0.3,
                crash_seed=5,
            )
            return broker.run(sessions)

        first, second = run(), run()
        assert first.to_dict()["placements"] == second.to_dict()["placements"]
        assert first.to_dict()["readmissions"] == second.to_dict()["readmissions"]

    def test_zero_crash_rate_never_touches_rng(self, minilab):
        sessions = generate_sessions(minilab.names[:3], 20, seed=23)
        baseline = RequestBroker(AdmissionController(DedicatedPolicy())).run(sessions)
        guarded = RequestBroker(
            AdmissionController(DedicatedPolicy()), crash_rate=0.0, crash_seed=999
        ).run(sessions)
        assert baseline.choices() == guarded.choices()
        assert "server_crashes" not in guarded.telemetry["counters"]


class TestChaosEndToEnd:
    """The acceptance scenario from the issue, end to end."""

    def test_chaos_run_completes_with_all_sessions_placed(self, minilab):
        sessions = generate_sessions(
            minilab.names, 220, arrival_rate=4.0, seed=31
        )
        injector = FaultInjector(FaultConfig(error_rate=0.35, seed=31))
        cache = PredictionCache(1024)
        policy, fallback = build_policy(
            "cm-feasible",
            predictor=minilab.predictor,
            qos=60.0,
            cache=cache,
            injector=injector,
        )
        controller = AdmissionController(
            policy,
            fallback=fallback,
            telemetry=injector.telemetry,
            breaker=CHAOS_BREAKER,
        )
        broker = RequestBroker(controller, crash_rate=0.05, crash_seed=31)
        report = broker.run(sessions)  # zero uncaught exceptions

        assert report.n_sessions == 220
        counters = report.telemetry["counters"]
        assert counters["faults_injected"] > 0
        assert counters["policy_errors"] > 0
        assert counters["server_crashes"] > 0
        # Every session (arrival or re-admission) was placed somewhere.
        decisions = counters["requests"]
        assert decisions == 220 + counters["readmissions"]
        assert counters["admissions"] + counters["servers_opened"] == decisions
        # Breaker state transitions made it into telemetry.
        assert report.resilience["trips"] >= 1
        assert report.resilience["breakers"]["primary"]["transitions"]
        assert any(
            e["event"] == "breaker_transition"
            for e in report.telemetry["events"]
        )
        # The whole report stays JSON-able.
        json.dumps(report.to_dict())

    def test_full_chaos_all_fault_kinds(self, minilab):
        sessions = generate_sessions(
            minilab.names, 200, arrival_rate=4.0, seed=32
        )
        injector = FaultInjector(
            FaultConfig(
                error_rate=0.2,
                latency_rate=0.05,
                latency_s=1e-4,
                corrupt_rate=0.15,
                stale_rate=0.15,
                seed=32,
            )
        )
        cache = PredictionCache(512)
        primary, fallback = build_policy(
            "max-fps",
            predictor=minilab.predictor,
            qos=60.0,
            cache=cache,
            injector=injector,
        )
        controller = AdmissionController(
            injector.wrap_policy(primary),
            fallback=fallback,
            telemetry=injector.telemetry,
            breaker=CHAOS_BREAKER,
        )
        report = RequestBroker(controller, crash_rate=0.03, crash_seed=32).run(
            sessions
        )
        counters = report.telemetry["counters"]
        assert report.n_sessions == 200
        assert counters["admissions"] + counters["servers_opened"] == counters[
            "requests"
        ]
        # The corrupt policy wrapper produced out-of-range indices and the
        # controller absorbed every one of them.
        assert counters["invalid_choices"] > 0
        json.dumps(report.to_dict())

    def test_zero_fault_rate_is_byte_identical_to_offline(self, minilab):
        """Fault layer fully wired but all rates zero: exact parity."""
        sessions = generate_sessions(
            minilab.names, 200, arrival_rate=4.0, seed=33
        )
        injector = FaultInjector(FaultConfig(seed=33))  # all rates zero
        cache = PredictionCache(1024)
        policy, fallback = build_policy(
            "cm-feasible",
            predictor=minilab.predictor,
            qos=60.0,
            cache=cache,
            injector=injector,
        )
        controller = AdmissionController(
            injector.wrap_policy(policy),
            fallback=fallback,
            telemetry=injector.telemetry,
            breaker=CHAOS_BREAKER,
            decision_deadline_s=60.0,
        )
        report = RequestBroker(controller, crash_rate=0.0, crash_seed=33).run(
            sessions
        )

        offline = OfflinePolicyAdapter(
            cm_feasible_policy(minilab.predictor, 60.0), name="offline-cm"
        )
        offline_report = RequestBroker(AdmissionController(offline)).run(sessions)

        assert report.choices() == offline_report.choices()
        assert report.server_ids() == offline_report.server_ids()
        counters = report.telemetry["counters"]
        assert counters.get("faults_injected", 0) == 0
        assert counters.get("policy_errors", 0) == 0
        assert report.resilience["trips"] == 0
        assert report.resilience["mode"] == "normal"
        assert report.readmissions == []


class TestFallbackChainCounters:
    """Satellite: the full primary -> fallback -> dedicated chain."""

    def test_primary_and_fallback_both_raise(self):
        controller = AdmissionController(_AlwaysFails(), fallback=_AlwaysFails())
        for _ in range(7):
            decision = controller.decide([((), ())], object())  # never raises
            assert decision.server is None
            assert decision.policy == "dedicated"
            assert decision.fallback
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["requests"] == 7
        assert counters["policy_errors"] == 7
        assert counters["fallbacks"] == 7
        assert counters["fallback_errors"] == 7
        assert counters["servers_opened"] == 7

    def test_primary_raises_fallback_answers(self, minilab):
        fallback = WorstFitPolicy(minilab.vbp)
        controller = AdmissionController(_AlwaysFails(), fallback=fallback)
        session = generate_sessions(minilab.names[:2], 1, seed=1)[0]
        decision = controller.decide([], session)
        assert decision.fallback
        assert decision.policy in ("worst-fit", "dedicated")
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["policy_errors"] == 1
        assert counters["fallbacks"] == 1
        assert counters.get("fallback_errors", 0) == 0


class TestInvalidChoiceValidation:
    """Satellite: out-of-range policy answers route through the chain."""

    class _OutOfRange:
        name = "liar"

        def select(self, signatures, session):
            return len(signatures) + 5

    class _WrongType:
        name = "typeliar"

        def select(self, signatures, session):
            return "server-3"

    def test_out_of_range_index_falls_back(self):
        controller = AdmissionController(self._OutOfRange(), fallback=_OpensServer())
        decision = controller.decide([((), ())], object())
        assert decision.server is None
        assert decision.fallback
        assert decision.policy == "opener"
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["invalid_choices"] == 1
        assert counters["policy_errors"] == 1

    def test_negative_and_wrong_type(self):
        class Negative:
            name = "neg"

            def select(self, signatures, session):
                return -1

        for bad in (Negative(), self._WrongType()):
            controller = AdmissionController(bad)
            decision = controller.decide([((), ())], object())
            assert decision.server is None
            assert controller.telemetry.snapshot()["counters"]["invalid_choices"] == 1

    def test_invalid_fallback_answer_degrades_to_dedicated(self):
        controller = AdmissionController(
            _AlwaysFails(), fallback=self._OutOfRange()
        )
        decision = controller.decide([((), ())], object())
        assert decision.server is None
        assert decision.policy == "dedicated"
        counters = controller.telemetry.snapshot()["counters"]
        assert counters["invalid_choices"] == 1
        assert counters["fallback_errors"] == 1

    def test_numpy_integer_choice_is_valid(self):
        import numpy as np

        class NumpyChooser:
            name = "np"

            def select(self, signatures, session):
                return np.int64(0)

        controller = AdmissionController(NumpyChooser())
        decision = controller.decide([((), ())], object())
        assert decision.server == 0
        assert not decision.fallback

    def test_broker_survives_invalid_choices_end_to_end(self, minilab):
        """The exact crash from the issue: ids[decision.server] blowing up."""
        sessions = generate_sessions(minilab.names[:3], 25, seed=41)
        report = RequestBroker(
            AdmissionController(self._OutOfRange())
        ).run(sessions)
        assert report.n_sessions == 25
        assert all(p.choice is None for p in report.placements)
        assert report.telemetry["counters"]["invalid_choices"] == 25
