"""Smoke tests for the cheap figure modules over the miniature lab.

The expensive model-training figures (7-10) are exercised by the benchmark
harness; here the data-collection figures run end to end and their outputs
satisfy the paper's qualitative observations.
"""

import pytest

from repro.experiments import (
    ext_conservative,
    fig01_pairs,
    fig02_catalog,
    fig04_sensitivity,
    fig05_intensity,
)
from repro.experiments.fig04_sensitivity import nonlinearity_score
from repro.experiments.runner import EXPERIMENTS, EXTENSIONS
from repro.hardware.resources import Resource


class TestFig01:
    def test_pairs_and_render(self, minilab):
        result = fig01_pairs.run(minilab)
        assert len(result["pairs"]) == 6
        text = fig01_pairs.render(result)
        assert "Ancestors Legacy" in text
        assert "solo:" in text


class TestFig02:
    def test_normalization(self, minilab):
        result = fig02_catalog.run(minilab)
        for key in ("cpu_demand", "gpu_demand", "memory_demand"):
            assert result[key].max() == pytest.approx(1.0)
            assert result[key].min() > 0.0
        assert "Figure 2" in fig02_catalog.render(result)


class TestFig04:
    def test_curves_present_for_representatives(self, minilab):
        result = fig04_sensitivity.run(minilab)
        assert len(result["games"]) == 6
        for name in result["games"]:
            assert set(result["curves"][name]) == {r.label for r in Resource}
        assert "Dota2" in fig04_sensitivity.render(result)

    def test_nonlinearity_score(self):
        linear = {"pressures": [0.0, 0.5, 1.0], "degradations": [1.0, 0.75, 0.5]}
        assert nonlinearity_score(linear) == pytest.approx(0.0)
        cliff = {"pressures": [0.0, 0.5, 1.0], "degradations": [1.0, 1.0, 0.5]}
        assert nonlinearity_score(cliff) == pytest.approx(0.25)


class TestFig05:
    def test_intensity_table(self, minilab):
        result = fig05_intensity.run(minilab)
        for name in result["games"]:
            values = list(result["intensity"][name].values())
            assert all(v >= 0 for v in values)
        assert "GPU-CE" in fig05_intensity.render(result)


class TestExtConservative:
    def test_subset_property(self, minilab):
        result = ext_conservative.run(minilab, qos=60.0)
        assert result["conservative_is_subset"]
        assert result["feasible_min"] <= result["feasible_mean"]
        assert "minimum-FPS" in ext_conservative.render(result)


class TestRunnerRegistry:
    def test_every_module_has_run_and_render(self):
        for name, module in EXPERIMENTS + EXTENSIONS:
            assert callable(module.run), name
            assert callable(module.render), name

    def test_names_unique(self):
        names = [n for n, _ in EXPERIMENTS + EXTENSIONS]
        assert len(set(names)) == len(names)
