"""Tests for the encoder model and processing delays."""

import numpy as np
import pytest

from repro.games.resolution import Resolution
from repro.hardware.resources import NUM_RESOURCES, Resource
from repro.simulator import (
    EncoderModel,
    GameInstance,
    processing_delays,
    run_colocation,
)

R720 = Resolution(1280, 720)
R1080 = Resolution(1920, 1080)


class TestEncoderModel:
    def test_solo_time_grows_with_pixels(self):
        enc = EncoderModel()
        assert enc.solo_encode_time_ms(R1080) > enc.solo_encode_time_ms(R720)

    def test_pressure_inflates_encode_time(self):
        enc = EncoderModel()
        quiet = np.zeros(NUM_RESOURCES)
        loud = np.zeros(NUM_RESOURCES)
        loud[int(Resource.GPU_BW)] = 1.0
        loud[int(Resource.PCIE_BW)] = 1.0
        assert enc.encode_time_ms(R1080, loud) > enc.encode_time_ms(R1080, quiet)

    def test_compute_pressure_ignored(self):
        # Dedicated silicon: CPU/GPU core pressure does not slow encoding.
        enc = EncoderModel()
        loud = np.zeros(NUM_RESOURCES)
        loud[int(Resource.CPU_CE)] = 1.0
        loud[int(Resource.GPU_CE)] = 1.0
        assert enc.encode_time_ms(R1080, loud) == pytest.approx(
            enc.solo_encode_time_ms(R1080)
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EncoderModel(fixed_ms=-1.0)


class TestProcessingDelays:
    def test_delay_exceeds_frame_time(self, catalog):
        game = GameInstance(catalog.get("Dota2"))
        result = run_colocation([game])
        delays = processing_delays(result)
        assert delays[0] > 1000.0 / result.fps[0]

    def test_colocation_increases_delay(self, catalog):
        solo = run_colocation([GameInstance(catalog.get("Dota2"))])
        pair = run_colocation(
            [GameInstance(catalog.get("Dota2")), GameInstance(catalog.get("H1Z1"))]
        )
        assert processing_delays(pair)[0] > processing_delays(solo)[0]

    def test_benchmark_slots_nan(self, catalog):
        from repro.bench import make_benchmark
        from repro.simulator import BenchmarkInstance

        result = run_colocation(
            [
                GameInstance(catalog.get("Dota2")),
                BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.5)),
            ]
        )
        delays = processing_delays(result)
        assert np.isnan(delays[1])
        assert np.isfinite(delays[0])
