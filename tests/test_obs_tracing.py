"""Tests for the span tracer: nesting, determinism, exporters, no-op path."""

import json

import pytest

from repro.obs import NOOP_TRACER, Span, TickClock, Tracer, spans_to_chrome
from repro.obs.tracing import _NOOP_SPAN


def _workload(tracer):
    """A fixed two-trace workload used by the determinism tests."""
    with tracer.span("request", index=0):
        with tracer.span("admission", game="Dota2"):
            with tracer.span("cache") as cache:
                cache.set(hits=2, misses=1)
            with tracer.span("predict", batched=1):
                pass
        tracer.instant("mode_transition", to="degraded")
    with tracer.span("request", index=1) as root:
        root.set(server_id=3)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("request") as root:
            with tracer.span("admission") as admission:
                with tracer.span("cache") as cache:
                    pass
            with tracer.span("policy") as policy:
                pass
        assert root.parent_id is None
        assert admission.parent_id == root.span_id
        assert cache.parent_id == admission.span_id
        assert policy.parent_id == root.span_id
        assert {s.trace_id for s in (root, admission, cache, policy)} == {1}

    def test_top_level_spans_open_new_traces(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("request"):
            pass
        with tracer.span("request"):
            pass
        assert tracer.n_traces == 2
        assert sorted(tracer.traces()) == [1, 2]

    def test_span_ids_unique_and_sequential(self):
        tracer = Tracer(clock=TickClock())
        _workload(tracer)
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))
        assert sorted(ids) == list(range(1, len(ids) + 1))

    def test_durations_nest(self):
        tracer = Tracer(clock=TickClock(step=1.0))
        with tracer.span("request") as root:
            with tracer.span("admission") as child:
                pass
        assert child.start_s >= root.start_s
        assert child.end_s <= root.end_s
        assert child.duration_s <= root.duration_s

    def test_exception_marks_error_and_unwinds(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(RuntimeError):
            with tracer.span("request") as root:
                with tracer.span("predict"):
                    raise RuntimeError("boom")
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["predict"].attributes["error"] == "RuntimeError"
        assert by_name["request"].attributes["error"] == "RuntimeError"
        assert root.end_s is not None
        # The stack fully unwound: the next span starts a fresh trace.
        with tracer.span("request"):
            pass
        assert tracer.n_traces == 2

    def test_instant_is_zero_length_child(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("request") as root:
            tracer.instant("breaker_transition", to="open")
        marker = next(s for s in tracer.spans if s.name == "breaker_transition")
        assert marker.parent_id == root.span_id
        assert marker.duration_s == 0.0


class TestDeterminism:
    def test_same_workload_same_clock_byte_identical(self):
        a, b = Tracer(clock=TickClock()), Tracer(clock=TickClock())
        _workload(a)
        _workload(b)
        assert a.to_jsonl() == b.to_jsonl()
        assert json.dumps(a.to_chrome_trace()) == json.dumps(b.to_chrome_trace())

    def test_export_files_byte_identical(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            tracer = Tracer(clock=TickClock())
            _workload(tracer)
            path = tmp_path / f"{run}.json"
            tracer.export_chrome_trace(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_tick_clock_advances(self):
        clock = TickClock(start=5.0, step=0.5)
        assert [clock(), clock(), clock()] == [5.0, 5.5, 6.0]
        with pytest.raises(ValueError):
            TickClock(step=0.0)


class TestDisabledTracer:
    def test_records_nothing(self):
        tracer = Tracer(enabled=False)
        _workload(tracer)
        assert tracer.spans == []
        assert tracer.n_traces == 0
        assert tracer.to_jsonl() == ""
        assert tracer.to_chrome_trace() == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_hands_out_one_shared_noop_span(self):
        # Identity, not equality: the disabled path allocates no spans.
        tracer = Tracer(enabled=False)
        first = tracer.span("request", index=0)
        second = tracer.span("predict", batched=3)
        assert first is second is _NOOP_SPAN
        assert first.set(anything=1) is first
        assert not isinstance(first, Span)

    def test_module_noop_tracer(self):
        assert NOOP_TRACER.enabled is False
        with NOOP_TRACER.span("request"):
            NOOP_TRACER.instant("marker")
        assert NOOP_TRACER.spans == []


class TestExporters:
    def test_jsonl_one_object_per_span(self):
        tracer = Tracer(clock=TickClock())
        _workload(tracer)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.spans)
        parsed = [json.loads(line) for line in lines]
        assert all("span_id" in p and "trace_id" in p for p in parsed)
        # Export order is by (trace, start): trace 1 fully precedes trace 2.
        assert [p["trace_id"] for p in parsed] == sorted(
            p["trace_id"] for p in parsed
        )

    def test_chrome_trace_shape(self):
        tracer = Tracer(clock=TickClock(step=1.0))
        _workload(tracer)
        doc = tracer.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        for event in complete:
            assert event["dur"] > 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)

    def test_spans_to_chrome_accepts_jsonl_round_trip(self):
        tracer = Tracer(clock=TickClock(step=1.0))
        _workload(tracer)
        reloaded = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        assert spans_to_chrome(reloaded) == tracer.to_chrome_trace()

    def test_clear(self):
        tracer = Tracer(clock=TickClock())
        _workload(tracer)
        tracer.clear()
        assert tracer.spans == []
        # Ids keep counting up so cleared and new spans never collide.
        with tracer.span("request") as span:
            pass
        assert span.trace_id == 3
