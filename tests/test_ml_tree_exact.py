"""Exactness tests: the CART split search matches brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor


def _brute_force_best_sse(X: np.ndarray, y: np.ndarray) -> float:
    """Minimum total SSE over every possible single axis-aligned split."""
    best = float(np.sum((y - y.mean()) ** 2))  # no-split fallback
    n = len(y)
    for j in range(X.shape[1]):
        values = np.unique(X[:, j])
        for threshold in (values[:-1] + values[1:]) / 2:
            left = X[:, j] <= threshold
            if not left.any() or left.all():
                continue
            sse = float(
                np.sum((y[left] - y[left].mean()) ** 2)
                + np.sum((y[~left] - y[~left].mean()) ** 2)
            )
            best = min(best, sse)
    return best


class TestSplitExactness:
    @given(
        st.integers(0, 10_000),
        st.integers(8, 40),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_depth_one_matches_brute_force(self, seed, n, p):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p)).round(1)  # ties exercise the scan
        y = rng.normal(size=n)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = tree.predict(X)
        tree_sse = float(np.sum((y - pred) ** 2))
        assert tree_sse == pytest.approx(_brute_force_best_sse(X, y), abs=1e-8)

    def test_threshold_is_midpoint(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        node_threshold = tree.tree_.threshold[0]
        assert node_threshold == pytest.approx(5.5)
