"""Tests for JSON serialization helpers."""

import numpy as np
import pytest

from repro.utils.serialization import (
    SerializationError,
    dump_json,
    load_json,
    to_jsonable,
)


class TestToJsonable:
    def test_numpy_array(self):
        assert to_jsonable(np.array([1.5, 2.5])) == [1.5, 2.5]

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int32(3)) == 3
        assert to_jsonable(np.bool_(True)) is True

    def test_nested_structures(self):
        data = {"a": [np.int64(1), (2.0, np.array([3]))], "b": None}
        assert to_jsonable(data) == {"a": [1, [2.0, [3]]], "b": None}

    def test_object_with_to_dict(self):
        class Thing:
            def to_dict(self):
                return {"x": np.float32(1.0)}

        assert to_jsonable(Thing()) == {"x": 1.0}

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="object"):
            to_jsonable(object())


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "data.json"
        dump_json({"values": np.arange(3)}, path)
        assert load_json(path) == {"values": [0, 1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.json"
        dump_json([1], path)
        assert path.exists()

    def test_truncated_file_names_path(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text('{"profiles": [1, 2')  # cut mid-stream
        with pytest.raises(SerializationError, match="truncated.json"):
            load_json(path)

    def test_corrupt_file_is_a_value_error(self, tmp_path):
        # Callers with existing `except ValueError` handling keep working.
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="garbage.json"):
            load_json(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_json(tmp_path / "absent.json")
