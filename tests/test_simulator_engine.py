"""Tests for the steady-state contention engine."""

import numpy as np
import pytest

from repro.bench import make_benchmark
from repro.games import Resolution
from repro.hardware.resources import Resource
from repro.hardware.server import ServerSpec
from repro.simulator import BenchmarkInstance, ColocationEngine, GameInstance


@pytest.fixture(scope="module")
def games(catalog):
    return {
        name: GameInstance(catalog.get(name))
        for name in ("Dota2", "H1Z1", "ARK Survival Evolved", "Stardew Valley")
    }


class TestSteadyState:
    def test_solo_game_unaffected(self, games):
        engine = ColocationEngine()
        state = engine.steady_state([games["H1Z1"]])
        assert state.rate_factors[0] == pytest.approx(1.0, abs=1e-6)
        assert np.allclose(state.pressures, 0.0)

    def test_empty_colocation_rejected(self):
        with pytest.raises(ValueError):
            ColocationEngine().steady_state([])

    def test_pair_converges(self, games):
        state = ColocationEngine().steady_state([games["H1Z1"], games["Dota2"]])
        assert state.converged
        assert np.all(state.rate_factors <= 1.0 + 1e-9)
        assert np.all(state.rate_factors > 0.0)

    def test_quad_converges(self, games):
        state = ColocationEngine().steady_state(list(games.values()))
        assert state.converged

    def test_more_corunners_more_degradation(self, games):
        engine = ColocationEngine()
        order = ["H1Z1", "Dota2", "ARK Survival Evolved", "Stardew Valley"]
        rates = []
        for k in range(2, 5):
            workloads = [games[n] for n in order[:k]]
            state = engine.steady_state(workloads)
            rates.append(state.rate_factors[0])
        assert rates[0] >= rates[1] >= rates[2]

    def test_light_corunner_hurts_less(self, games):
        engine = ColocationEngine()
        heavy = engine.steady_state([games["H1Z1"], games["ARK Survival Evolved"]])
        light = engine.steady_state([games["H1Z1"], games["Stardew Valley"]])
        assert light.rate_factors[0] > heavy.rate_factors[0]

    def test_benchmark_slowdown_reported(self, games):
        bench = BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.5))
        state = ColocationEngine().steady_state([games["H1Z1"], bench])
        assert state.slowdowns[1] >= 1.0
        assert np.isnan(state.slowdowns[0])
        assert np.isnan(state.frame_times_ms[1])

    def test_benchmark_rate_pinned(self, games):
        bench = BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.9))
        state = ColocationEngine().steady_state([games["H1Z1"], bench])
        assert state.rate_factors[1] == 1.0

    def test_zero_pressure_benchmark_harmless(self, games):
        engine = ColocationEngine()
        solo = engine.steady_state([games["H1Z1"]])
        with_idle = engine.steady_state(
            [games["H1Z1"], BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.0))]
        )
        assert with_idle.rate_factors[0] == pytest.approx(
            solo.rate_factors[0], abs=1e-6
        )


class TestServerScaling:
    def test_faster_server_less_degradation(self, games):
        pair = [games["H1Z1"], games["ARK Survival Evolved"]]
        ref = ColocationEngine().steady_state(pair)
        big_spec = ServerSpec(
            name="big", cpu_scale=2.0, gpu_scale=2.0, link_scale=2.0,
            cpu_mem_gb=32.0, gpu_mem_gb=16.0,
        )
        big = ColocationEngine(big_spec).steady_state(pair)
        assert big.rate_factors[0] > ref.rate_factors[0]

    def test_faster_server_shorter_frames(self, games):
        solo = [games["H1Z1"]]
        ref = ColocationEngine().steady_state(solo)
        big_spec = ServerSpec(name="big", cpu_scale=2.0, gpu_scale=2.0, link_scale=2.0)
        big = ColocationEngine(big_spec).steady_state(solo)
        assert big.frame_times_ms[0] < ref.frame_times_ms[0]


class TestMemoryThrash:
    def test_oversubscription_penalizes(self, catalog):
        heavy = [
            GameInstance(catalog.get(n), Resolution(1920, 1080))
            for n in ("ARK Survival Evolved", "The Witcher 3: Wild Hunt")
        ]
        tiny_mem = ServerSpec(name="tiny", cpu_mem_gb=1.0, gpu_mem_gb=0.5)
        engine = ColocationEngine(tiny_mem)
        factor = engine._memory_thrash_factor(heavy)
        assert factor > 2.0
        plenty = ColocationEngine(ServerSpec(name="ok", cpu_mem_gb=64, gpu_mem_gb=64))
        assert plenty._memory_thrash_factor(heavy) == 1.0

    def test_thrash_reduces_rate(self, catalog):
        heavy = [
            GameInstance(catalog.get(n))
            for n in ("ARK Survival Evolved", "The Witcher 3: Wild Hunt")
        ]
        normal = ColocationEngine().steady_state(heavy)
        tiny = ColocationEngine(
            ServerSpec(name="tiny", cpu_mem_gb=1.0, gpu_mem_gb=0.5)
        ).steady_state(heavy)
        assert tiny.rate_factors[0] < normal.rate_factors[0]


class TestEngineValidation:
    def test_bad_damping(self):
        with pytest.raises(ValueError):
            ColocationEngine(damping=0.0)

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            ColocationEngine(max_iterations=0)

    def test_bad_rate_feedback(self):
        with pytest.raises(ValueError):
            ColocationEngine(rate_feedback=1.5)

    def test_full_rate_feedback_weaker_pressure(self, games):
        pair = [games["H1Z1"], games["ARK Survival Evolved"]]
        none = ColocationEngine(rate_feedback=0.0).steady_state(pair)
        full = ColocationEngine(rate_feedback=1.0).steady_state(pair)
        # With full feedback the degraded partner exerts less pressure.
        assert full.rate_factors.min() > none.rate_factors.min()
