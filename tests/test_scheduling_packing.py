"""Tests for Algorithm 1 request packing."""


from repro.core.training import ColocationSpec
from repro.games.resolution import Resolution
from repro.scheduling import GameRequest, pack_requests

R = Resolution(1920, 1080)


def _spec(*names):
    return ColocationSpec(tuple((n, R) for n in names))


def _requests(counts: dict[str, int]):
    return [GameRequest(name, R) for name, k in counts.items() for _ in range(k)]


class TestPackRequests:
    def test_no_feasible_colocations_dedicated_servers(self):
        requests = _requests({"a": 3, "b": 2})
        result = pack_requests(requests, [])
        assert result.n_servers == 5
        assert all(s.size == 1 for s in result.servers)

    def test_perfect_pairing_halves_servers(self):
        requests = _requests({"a": 10, "b": 10})
        result = pack_requests(requests, [_spec("a", "b")])
        assert result.n_servers == 10
        assert all(s.size == 2 for s in result.servers)

    def test_prefers_larger_colocations(self):
        requests = _requests({"a": 4, "b": 4, "c": 4})
        feasible = [_spec("a", "b"), _spec("a", "b", "c")]
        result = pack_requests(requests, feasible)
        assert result.n_servers == 4
        assert all(s.size == 3 for s in result.servers)

    def test_leftovers_run_alone(self):
        requests = _requests({"a": 3, "b": 1})
        result = pack_requests(requests, [_spec("a", "b")])
        # One a+b server, two dedicated a servers.
        assert result.n_servers == 3
        hist = result.size_histogram()
        assert hist == {1: 2, 2: 1}

    def test_all_requests_served_exactly_once(self):
        requests = _requests({"a": 7, "b": 5, "c": 3})
        feasible = [_spec("a", "b"), _spec("b", "c"), _spec("a", "b", "c")]
        result = pack_requests(requests, feasible)
        served: dict[str, int] = {}
        for spec in result.servers:
            for name, _ in spec.entries:
                served[name] = served.get(name, 0) + 1
        assert served == {"a": 7, "b": 5, "c": 3}

    def test_deterministic_tie_breaking(self):
        requests = _requests({"a": 2, "b": 2, "c": 2})
        feasible = [_spec("b", "c"), _spec("a", "b")]
        first = pack_requests(requests, feasible)
        second = pack_requests(requests, feasible)
        assert first.servers == second.servers

    def test_beats_no_colocation_when_possible(self):
        requests = _requests({"a": 50, "b": 50, "c": 50, "d": 50})
        feasible = [_spec("a", "b", "c", "d")]
        result = pack_requests(requests, feasible)
        assert result.n_servers == 50  # vs 200 dedicated


class TestPackingResult:
    def test_size_histogram_sorted(self):
        requests = _requests({"a": 2, "b": 1})
        result = pack_requests(requests, [_spec("a", "b")])
        hist = result.size_histogram()
        assert list(hist.keys()) == sorted(hist.keys())
