"""Tests for the synthetic game catalog and its paper-matching properties."""

import numpy as np
import pytest

from repro.games import REFERENCE_RESOLUTION, build_catalog
from repro.games.catalog import GAME_NAMES, REPRESENTATIVE_GAMES, GameCatalog
from repro.games.genres import Genre, genre_archetypes
from repro.hardware.resources import Resource


class TestGameNames:
    def test_exactly_100_games(self):
        assert len(GAME_NAMES) == 100

    def test_names_unique(self):
        names = [n for n, _ in GAME_NAMES]
        assert len(set(names)) == 100

    def test_representative_games_present(self):
        names = {n for n, _ in GAME_NAMES}
        for rep in REPRESENTATIVE_GAMES:
            assert rep in names

    def test_all_genres_have_archetypes(self):
        archetypes = genre_archetypes()
        for _, genre in GAME_NAMES:
            assert genre in archetypes


class TestBuildCatalog:
    def test_deterministic(self, catalog):
        other = build_catalog()
        for a, b in zip(catalog, other):
            assert a == b

    def test_seed_changes_catalog(self, catalog):
        other = build_catalog(seed=999)
        assert any(a != b for a, b in zip(catalog, other))

    def test_solo_fps_range_plausible(self, catalog):
        fps = np.array(
            [g.solo_fps_nominal(REFERENCE_RESOLUTION) for g in catalog]
        )
        assert fps.min() > 30.0
        assert fps.max() < 500.0
        assert fps.max() / fps.min() > 3.0  # diversity (Figure 2b)

    def test_utilization_in_unit_interval(self, catalog):
        for game in catalog:
            util = game.utilization(REFERENCE_RESOLUTION)
            assert all(0.0 <= u <= 1.0 for u in util)

    def test_lookup_and_suggestions(self, catalog):
        assert catalog.get("Dota2").name == "Dota2"
        with pytest.raises(KeyError, match="Dota2"):
            catalog.get("dota")

    def test_subset_preserves_order(self, catalog):
        sub = catalog.subset(["H1Z1", "Dota2"])
        assert sub.names() == ["H1Z1", "Dota2"]

    def test_by_genre(self, catalog):
        mobas = catalog.by_genre(Genre.MOBA_ESPORTS)
        assert all(g.genre is Genre.MOBA_ESPORTS for g in mobas)
        assert len(mobas) >= 3

    def test_duplicate_names_rejected(self, catalog):
        spec = catalog.get("Dota2")
        with pytest.raises(ValueError, match="duplicate"):
            GameCatalog([spec, spec], seed=0)

    def test_dict_round_trip(self, catalog):
        sub = catalog.subset(["Dota2", "H1Z1"])
        restored = GameCatalog.from_dict(sub.to_dict())
        assert restored.names() == sub.names()
        assert restored.get("Dota2") == sub.get("Dota2")


class TestPaperAnecdotes:
    """The hand-tuned overrides behind Observations 1-3."""

    def test_elder_scrolls_cpu_sensitive(self, catalog):
        spec = catalog.get("The Elder Scrolls5")
        # ~70% degradation at max CPU-CE pressure => inflation ~3.3.
        assert spec.sensitivity[Resource.CPU_CE].inflation(1.0) > 3.0

    def test_far_cry_mild_cpu_sensitivity(self, catalog):
        spec = catalog.get("Far Cry4")
        assert spec.sensitivity[Resource.CPU_CE].inflation(1.0) == pytest.approx(1.45)

    def test_far_cry_sensitive_to_everything(self, catalog):
        spec = catalog.get("Far Cry4")
        for res in Resource:
            assert spec.sensitivity[res].magnitude >= 0.45

    def test_granado_espada_observation2(self, catalog):
        spec = catalog.get("Granado Espada")
        assert spec.sensitivity[Resource.GPU_CE].magnitude >= 2.0
        assert spec.base_util[Resource.GPU_CE] <= 0.15

    def test_representative_games_in_catalog(self, catalog):
        for name in REPRESENTATIVE_GAMES:
            assert name in catalog
