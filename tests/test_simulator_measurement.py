"""Tests for the measurement API: determinism, noise, CRN structure."""

import numpy as np
import pytest

from repro.bench import make_benchmark
from repro.games import Resolution
from repro.hardware.resources import Resource
from repro.simulator import (
    BenchmarkInstance,
    GameInstance,
    MeasurementConfig,
    measure_solo_fps,
    run_colocation,
)


@pytest.fixture(scope="module")
def pair(catalog):
    return [GameInstance(catalog.get("H1Z1")), GameInstance(catalog.get("Dota2"))]


class TestDeterminism:
    def test_identical_runs_identical_fps(self, pair):
        a = run_colocation(list(pair))
        b = run_colocation(list(pair))
        assert a.fps == b.fps

    def test_different_seed_different_noise(self, pair):
        a = run_colocation(list(pair), config=MeasurementConfig(seed=1))
        b = run_colocation(list(pair), config=MeasurementConfig(seed=2))
        assert a.fps != b.fps

    def test_noise_changes_reading_for_same_scene(self, pair):
        # Same seed => same scene trace; the only difference is the
        # measurement noise multiplier.
        clean = run_colocation(list(pair), config=MeasurementConfig(noise_sigma=0.0))
        noisy = run_colocation(list(pair), config=MeasurementConfig(noise_sigma=0.05))
        assert clean.fps != noisy.fps
        assert clean.fps == pytest.approx(noisy.fps, rel=0.25)


class TestMeasurement:
    def test_solo_fps_close_to_nominal(self, catalog):
        spec = catalog.get("Dota2")
        measured = measure_solo_fps(GameInstance(spec))
        assert measured == pytest.approx(
            spec.solo_fps_nominal(Resolution(1920, 1080)), rel=0.10
        )

    def test_colocation_degrades(self, catalog, pair):
        solo = measure_solo_fps(GameInstance(catalog.get("H1Z1")))
        coloc = run_colocation(list(pair))
        assert coloc.fps[0] < solo

    def test_benchmark_slot_reports_slowdown_not_fps(self, catalog):
        game = GameInstance(catalog.get("H1Z1"))
        bench = BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.5))
        result = run_colocation([game, bench])
        assert np.isnan(result.fps[1])
        assert result.slowdowns[1] > 1.0
        assert np.isnan(result.slowdowns[0])

    def test_accessors(self, pair):
        result = run_colocation(list(pair))
        assert result.fps_of(0) == result.fps[0]
        assert np.isnan(result.slowdown_of(0))

    def test_min_fps_mode_lower_than_mean(self, catalog):
        instance = GameInstance(catalog.get("ARK Survival Evolved"))
        mean_cfg = MeasurementConfig(noise_sigma=0.0)
        min_cfg = MeasurementConfig(noise_sigma=0.0, min_fps_mode=True)
        assert measure_solo_fps(instance, config=min_cfg) < measure_solo_fps(
            instance, config=mean_cfg
        )

    def test_engine_server_mismatch_rejected(self, pair):
        from repro.hardware.server import ServerSpec
        from repro.simulator import ColocationEngine

        engine = ColocationEngine(ServerSpec(name="other"))
        with pytest.raises(ValueError, match="server"):
            run_colocation(list(pair), engine=engine)


class TestCommonRandomNumbers:
    """The scene trace must be shared between solo and colocated runs."""

    def test_degradation_ratio_stable_at_zero_pressure(self, catalog):
        game = GameInstance(catalog.get("Rise of The Tomb Raider"))
        config = MeasurementConfig(noise_sigma=0.0)
        solo = measure_solo_fps(game, config=config)
        idle = BenchmarkInstance(make_benchmark(Resource.GPU_CE, 0.0))
        coloc = run_colocation([game, idle], config=config)
        # Without CRN the AR(1) trace would shift and the ratio would move
        # by several percent; with CRN it is within the tiny spill effect.
        assert coloc.fps[0] / solo == pytest.approx(1.0, abs=0.02)


class TestMeasurementConfigValidation:
    def test_bad_frames(self):
        with pytest.raises(ValueError):
            MeasurementConfig(n_frames=0)

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            MeasurementConfig(noise_sigma=-0.1)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            MeasurementConfig(min_fps_percentile=60.0)
