"""Tests for snapshot tooling: load, merge, diff, gate, Prometheus check."""

import json
import math

import pytest

from repro.obs import (
    check_regressions,
    diff_snapshots,
    load_snapshot,
    merge_all,
    merge_snapshots,
    parse_fail_spec,
    render_diff,
    snapshot_to_prometheus,
    summarize_snapshot,
    validate_prometheus,
)
from repro.obs.metrics import Telemetry


def _record(telemetry, observations):
    """A deterministic workload: exact-binary durations, labels, events."""
    for seconds in observations:
        telemetry.counter("requests").inc()
        telemetry.counter("decisions", policy="cm-feasible").inc()
        telemetry.histogram("decision_latency_s").observe(seconds)
        telemetry.histogram("predict_s", model="cm").observe(seconds / 2)
    telemetry.gauge("open_servers").set(len(observations))
    telemetry.event("marker", n=len(observations))


class TestLoadSnapshot:
    def test_bare_snapshot(self, tmp_path):
        t = Telemetry()
        _record(t, [0.25])
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(t.snapshot()))
        assert load_snapshot(path)["counters"]["requests"] == 1

    def test_unwraps_serve_report(self, tmp_path):
        t = Telemetry()
        _record(t, [0.25])
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"n_sessions": 1, "telemetry": t.snapshot()}))
        assert load_snapshot(path)["counters"]["requests"] == 1

    def test_bad_json_names_path(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt.json"):
            load_snapshot(path)

    def test_wrong_schema_names_path(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="no telemetry snapshot"):
            load_snapshot(path)


class TestMerge:
    def test_split_workload_equals_single_run(self):
        # Exactly representable durations so the totals match bit for bit.
        full = [0.25, 0.5, 0.125, 2.0, 0.0625, 0.25]
        single = Telemetry()
        _record(single, full)
        first, second = Telemetry(), Telemetry()
        _record(first, full[:3])
        _record(second, full[3:])
        merged = merge_snapshots(first.snapshot(), second.snapshot())
        expected = single.snapshot()
        # The gauge sums (3 + 3 = 6) and both event markers survive; the
        # rest must reproduce the single run exactly.
        expected["gauges"]["open_servers"] = 6.0
        expected["events"] = [{"event": "marker", "n": 3}] * 2
        assert merged == expected

    def test_merge_through_files_round_trip(self, tmp_path):
        first, second = Telemetry(), Telemetry()
        _record(first, [0.25, 0.5])
        _record(second, [0.125])
        paths = []
        for i, t in enumerate((first, second)):
            path = tmp_path / f"{i}.json"
            path.write_text(json.dumps(t.snapshot()))
            paths.append(path)
        merged = merge_snapshots(load_snapshot(paths[0]), load_snapshot(paths[1]))
        assert merged == merge_snapshots(first.snapshot(), second.snapshot())

    def test_labeled_children_merge_by_label_set(self):
        a, b = Telemetry(), Telemetry()
        a.counter("decisions", policy="cm-feasible").inc(2)
        a.counter("decisions", policy="max-fps").inc(1)
        b.counter("decisions", policy="cm-feasible").inc(3)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        children = {
            c["labels"]["policy"]: c["value"]
            for c in merged["labeled"]["counters"]["decisions"]
        }
        assert children == {"cm-feasible": 5, "max-fps": 1}

    def test_mismatched_buckets_rejected(self):
        a, b = Telemetry(), Telemetry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("lat", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError, match="mismatched bucket"):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_disjoint_metrics_union(self):
        a, b = Telemetry(), Telemetry()
        a.counter("only_a").inc()
        b.counter("only_b").inc(2)
        b.histogram("only_b_s").observe(0.25)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"] == {"only_a": 1, "only_b": 2}
        assert merged["histograms"]["only_b_s"]["count"] == 1


class TestDiffAndGate:
    def _rows(self, old_p99=0.025, new_p99=0.025, old_req=10, new_req=10):
        old, new = Telemetry(), Telemetry()
        old.counter("requests").inc(old_req)
        new.counter("requests").inc(new_req)
        old.histogram("decision_latency_s").observe(old_p99)
        new.histogram("decision_latency_s").observe(new_p99)
        return diff_snapshots(old.snapshot(), new.snapshot())

    def test_identical_runs_no_changes(self):
        rows = self._rows()
        assert all(r["delta"] == 0 for r in rows)
        assert render_diff(rows) == "no differences"
        assert check_regressions(rows, [parse_fail_spec("p99_s:+20%")]) == []

    def test_regression_breaches_spec(self):
        rows = self._rows(old_p99=0.02, new_p99=0.09)
        breaches = check_regressions(rows, [parse_fail_spec("p99_s:+20%")])
        assert len(breaches) == 1
        assert breaches[0]["metric"] == "decision_latency_s"
        assert breaches[0]["spec"] == "p99_s:+20%"

    def test_within_allowance_passes(self):
        rows = self._rows(old_req=100, new_req=105)
        assert check_regressions(rows, [parse_fail_spec("requests:+10%")]) == []
        assert check_regressions(rows, [parse_fail_spec("requests:+2%")])

    def test_metric_scoped_spec(self):
        rows = self._rows(old_p99=0.02, new_p99=0.09)
        scoped = parse_fail_spec("decision_latency_s.p99_s:+20%")
        other = parse_fail_spec("some_other_metric_s.p99_s:+20%")
        assert check_regressions(rows, [scoped])
        assert check_regressions(rows, [other]) == []

    def test_growth_from_zero_breaches(self):
        old, new = Telemetry(), Telemetry()
        new.counter("policy_errors").inc(1)
        rows = diff_snapshots(old.snapshot(), new.snapshot())
        assert check_regressions(rows, [parse_fail_spec("policy_errors:+0%")])

    def test_bad_spec_rejected(self):
        for bad in ("p99_s", "p99_s:-20%", "p99_s:+20", ":+20%"):
            with pytest.raises(ValueError, match="fail-on"):
                parse_fail_spec(bad)

    def test_render_diff_table(self):
        rows = self._rows(old_req=10, new_req=15)
        table = render_diff(rows)
        assert "requests" in table
        assert "+50.0%" in table


class TestSummarize:
    def test_mentions_every_section(self):
        t = Telemetry()
        _record(t, [0.25, 0.5])
        text = summarize_snapshot(t.snapshot(), title="run A")
        assert "== run A" in text
        assert "requests" in text
        assert "open_servers" in text
        assert "decision_latency_s" in text
        assert "events: 1 retained, 0 dropped" in text


class TestPrometheus:
    def test_live_snapshot_round_trip_validates(self):
        t = Telemetry()
        _record(t, [0.25, 0.5, 3.0])  # 3.0 overflows the default buckets
        text = snapshot_to_prometheus(t.snapshot())
        assert validate_prometheus(text) == []
        assert "requests_total 3" in text
        assert 'decisions_total{policy="cm-feasible"} 3' in text
        assert 'decision_latency_s_bucket{le="+Inf"} 3' in text
        assert "open_servers 3" in text
        assert text == t.to_prometheus()

    def test_label_escaping(self):
        t = Telemetry()
        t.counter("odd", game='He said "hi"\nbye').inc()
        text = snapshot_to_prometheus(t.snapshot())
        assert validate_prometheus(text) == []
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_validator_flags_malformed_lines(self):
        assert validate_prometheus("ok_total 1\n") == []
        errors = validate_prometheus("9bad{x=1} nope\n")
        assert errors and "malformed sample" in errors[0]
        assert validate_prometheus("x_total 1") == [
            "exposition must end with a newline"
        ]
        assert "malformed comment" in validate_prometheus("# HELLO x y\n")[0]

    def test_inf_quantiles_render_as_inf(self):
        t = Telemetry()
        t.histogram("slow_s", buckets=(0.001,)).observe(5.0)
        snap = t.snapshot()
        assert snap["histograms"]["slow_s"]["p50_s"] == math.inf
        text = snapshot_to_prometheus(snap)
        assert validate_prometheus(text) == []


class TestMergeEdgeCases:
    """Regression tests for merge robustness (sharded-tier reporting)."""

    def test_merge_all_empty_list_is_valid_empty_snapshot(self):
        merged = merge_all([])
        assert merged == Telemetry().snapshot()

    def test_merge_all_single_snapshot_normalizes(self):
        t = Telemetry()
        _record(t, [0.25, 0.5])
        merged = merge_all([t.snapshot()])
        assert merged == merge_snapshots(Telemetry().snapshot(), t.snapshot())
        assert merged["counters"] == t.snapshot()["counters"]

    def test_merge_all_matches_pairwise_fold(self):
        parts = []
        for chunk in ([0.25], [0.5, 0.125], [2.0]):
            t = Telemetry()
            _record(t, chunk)
            parts.append(t.snapshot())
        folded = parts[0]
        for part in parts[1:]:
            folded = merge_snapshots(folded, part)
        merged = merge_all(parts)
        # Pairwise folding passes the first snapshot through unnormalized;
        # the counters/histograms content must still agree exactly.
        assert merged["counters"] == folded["counters"]
        assert merged["histograms"] == folded["histograms"]
        assert merged["labeled"] == folded["labeled"]

    def test_disjoint_labeled_metrics_union(self):
        a, b = Telemetry(), Telemetry()
        a.counter("only_a", shard="0").inc(2)
        b.counter("only_b", shard="1").inc(3)
        b.histogram("only_b_s", shard="1").observe(0.25)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["labeled"]["counters"]["only_a"][0]["value"] == 2
        assert merged["labeled"]["counters"]["only_b"][0]["value"] == 3
        assert merged["labeled"]["histograms"]["only_b_s"][0]["count"] == 1

    def test_labeled_entry_without_labels_treated_as_unlabeled(self):
        a = {"labeled": {"counters": {"hits": [{"value": 2}]}}}
        b = {"labeled": {"counters": {"hits": [{"value": 3}]}}}
        merged = merge_snapshots(a, b)
        assert merged["labeled"]["counters"]["hits"][0]["value"] == 5

    def test_histogram_dict_without_buckets_goes_to_overflow(self):
        from repro.obs.metrics import LatencyHistogram

        hist = LatencyHistogram.from_dict("lat", {"count": 4, "total_s": 2.0})
        assert hist.count == 4
        assert hist.total == 2.0
        assert hist.overflow_count == 4
        # And it survives a merge with a real histogram-less snapshot.
        merged = merge_snapshots(
            {"histograms": {"lat": {"count": 4, "total_s": 2.0}}}, {}
        )
        assert merged["histograms"]["lat"]["count"] == 4
