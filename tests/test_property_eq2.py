"""Property tests pinning the paper's Eq. 2 resolution laws (Obs 6-8).

Two layers are pinned across the whole synthetic catalog:

* the *ground-truth* layer (:class:`repro.games.GameSpec`): solo
  utilization of GPU-side resources is affine in the pixel ratio while
  CPU-side entries and the sensitivity shapes never move with
  resolution;
* the *model* layer (:class:`repro.core.profiles.GameProfile`): with
  exactly two profiled resolutions, ``solo_fps_at`` / ``intensity_at``
  reproduce the single fitted line of Eq. 2 between the profiled pixel
  counts, CPU-side intensity is the profiled average, and queries
  outside the profiled span clamp to the endpoints instead of
  extrapolating the line.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import GameProfile, SensitivityCurve
from repro.games import build_catalog
from repro.games.game import PIXEL_SCALED_RESOURCES
from repro.games.resolution import REFERENCE_RESOLUTION, Resolution
from repro.hardware.resources import CPU_RESOURCES, Resource, ResourceVector

CATALOG = build_catalog()
GAMES = [CATALOG.get(name) for name in CATALOG.names()]

LOW = Resolution(1280, 720)
HIGH = Resolution(1920, 1080)

game_indices = st.integers(0, len(GAMES) - 1)
resolutions = st.builds(
    Resolution,
    st.integers(640, 3840),
    st.integers(360, 2160),
)


def lerp_by_pixels(r: Resolution, lo_val: float, hi_val: float) -> float:
    """The Eq. 2 line through (LOW, lo_val) and (HIGH, hi_val)."""
    t = (r.megapixels - LOW.megapixels) / (HIGH.megapixels - LOW.megapixels)
    return lo_val + t * (hi_val - lo_val)


class TestGroundTruthLayer:
    """GameSpec: the catalog's hidden resolution laws, all 100 games."""

    @settings(max_examples=60, deadline=None)
    @given(game_indices, resolutions)
    def test_cpu_utilization_resolution_invariant(self, i, r):
        game = GAMES[i]
        ref = game.utilization(REFERENCE_RESOLUTION)
        at = game.utilization(r)
        for res in Resource:
            if res not in PIXEL_SCALED_RESOURCES:
                assert at[res] == pytest.approx(ref[res])

    @settings(max_examples=60, deadline=None)
    @given(game_indices, resolutions)
    def test_gpu_utilization_affine_in_pixel_ratio(self, i, r):
        game = GAMES[i]
        ref = game.utilization(REFERENCE_RESOLUTION)
        at = game.utilization(r)
        scale = 1.0 - game.pixel_fraction + game.pixel_fraction * r.pixel_ratio()
        for res in PIXEL_SCALED_RESOURCES:
            assert at[res] == pytest.approx(min(1.0, ref[res] * scale))

    @settings(max_examples=60, deadline=None)
    @given(game_indices, resolutions)
    def test_sensitivity_resolution_invariant(self, i, r):
        # Obs 6: the sensitivity shapes carry no resolution dependence at
        # all — the same inflation comes back whatever resolution the
        # game renders at (the API has no resolution argument to vary).
        game = GAMES[i]
        for res in Resource:
            assert game.inflation(res, 0.5) == game.inflation(res, 0.5)

    def test_gpu_time_linear_in_pixels_all_games(self):
        # gpu_time(r) = fixed + per_mpix * mpix: three collinear samples.
        r_mid = Resolution(1600, 900)
        for game in GAMES:
            lo, mid, hi = (
                game.gpu_time_ms(LOW),
                game.gpu_time_ms(r_mid),
                game.gpu_time_ms(HIGH),
            )
            expect = lo + (hi - lo) * (
                (r_mid.megapixels - LOW.megapixels)
                / (HIGH.megapixels - LOW.megapixels)
            )
            assert mid == pytest.approx(expect)


def two_point_profile(game) -> GameProfile:
    """A 2-point GameProfile built from the spec's analytic values.

    With exactly two profiled resolutions the model's piecewise-linear
    interpolation *is* the Eq. 2 fitted line, which is what these tests
    pin (the shipped profiler uses three points; the law is the same per
    segment).
    """
    sensitivity = {
        res: SensitivityCurve(
            resource=res, pressures=(0.0, 1.0), degradations=(1.0, 0.9)
        )
        for res in Resource
    }
    return GameProfile(
        name=game.name,
        sensitivity=sensitivity,
        solo_fps={r: game.solo_fps_nominal(r) for r in (LOW, HIGH)},
        intensity={r: game.utilization(r) for r in (LOW, HIGH)},
        demand={r: game.utilization(r) for r in (LOW, HIGH)},
        cpu_mem_gb=game.cpu_mem_gb,
        gpu_mem_gb=game.gpu_mem_gb,
    )


class TestModelLayer:
    """GameProfile: Eq. 2 as the profiles actually apply it."""

    @settings(max_examples=60, deadline=None)
    @given(game_indices, st.floats(0.0, 1.0))
    def test_solo_fps_is_the_fitted_line_between_points(self, i, t):
        game = GAMES[i]
        profile = two_point_profile(game)
        # A resolution whose pixel count sits at fraction t of the span.
        pixels = LOW.pixels + t * (HIGH.pixels - LOW.pixels)
        width = max(2, int(round(pixels / 1000)))
        r = Resolution(width, 1000)
        expect = lerp_by_pixels(
            r, game.solo_fps_nominal(LOW), game.solo_fps_nominal(HIGH)
        )
        assert profile.solo_fps_at(r) == pytest.approx(max(1.0, expect), rel=1e-3)

    @settings(max_examples=60, deadline=None)
    @given(game_indices, st.floats(0.0, 1.0))
    def test_gpu_intensity_is_the_fitted_line_between_points(self, i, t):
        game = GAMES[i]
        profile = two_point_profile(game)
        pixels = LOW.pixels + t * (HIGH.pixels - LOW.pixels)
        width = max(2, int(round(pixels / 1000)))
        r = Resolution(width, 1000)
        vec = profile.intensity_at(r)
        lo, hi = game.utilization(LOW), game.utilization(HIGH)
        for res in Resource:
            if res not in CPU_RESOURCES:
                expect = max(0.0, lerp_by_pixels(r, lo[res], hi[res]))
                assert vec[res] == pytest.approx(expect, rel=1e-3, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(game_indices)
    def test_cpu_intensity_is_the_profiled_average(self, i):
        game = GAMES[i]
        profile = two_point_profile(game)
        lo, hi = game.utilization(LOW), game.utilization(HIGH)
        # Any query resolution gives the same CPU-side entries (Obs 7).
        for r in (Resolution(640, 360), Resolution(1600, 900), Resolution(3840, 2160)):
            vec = profile.intensity_at(r)
            for res in CPU_RESOURCES:
                assert vec[res] == pytest.approx((lo[res] + hi[res]) / 2.0)

    @settings(max_examples=60, deadline=None)
    @given(game_indices)
    def test_queries_clamp_outside_profiled_span(self, i):
        game = GAMES[i]
        profile = two_point_profile(game)
        below = Resolution(640, 360)
        above = Resolution(3840, 2160)
        assert profile.solo_fps_at(below) == pytest.approx(
            max(1.0, game.solo_fps_nominal(LOW))
        )
        assert profile.solo_fps_at(above) == pytest.approx(
            max(1.0, game.solo_fps_nominal(HIGH))
        )

    @settings(max_examples=30, deadline=None)
    @given(game_indices)
    def test_downscale_strictly_helps_solo_fps(self, i):
        # The premise behind the downscale actuator: one rung down never
        # lowers a game's modeled solo frame rate.
        game = GAMES[i]
        profile = two_point_profile(game)
        assert profile.solo_fps_at(LOW) >= profile.solo_fps_at(HIGH)
