"""End-to-end tracing through the serving broker (the acceptance bar).

Every admitted session must yield a ``request`` root span with at least
four nested descendants — admission decision, cache lookup, prediction,
policy choice — forming one trace whose child durations sum to no more
than the root's.
"""

import json

import pytest

from repro.obs import TickClock, Tracer
from repro.scheduling.dynamic import generate_sessions
from repro.serving import (
    AdmissionController,
    CMFeasiblePolicy,
    PredictionCache,
    RequestBroker,
)

N_REQUESTS = 60

#: The stage names the acceptance criteria require inside each request.
REQUIRED_STAGES = {"admission", "cache", "predict", "policy"}


@pytest.fixture(scope="module")
def traced_run(minilab):
    """One traced broker run over a seeded trace (shared by the tests)."""
    sessions = generate_sessions(
        minilab.names[:8], N_REQUESTS, arrival_rate=4.0, seed=11
    )
    tracer = Tracer(clock=TickClock())
    policy = CMFeasiblePolicy(minilab.predictor, 60.0, cache=PredictionCache(4096))
    broker = RequestBroker(AdmissionController(policy), tracer=tracer)
    report = broker.run(sessions)
    return tracer, report


class TestRequestTraces:
    def test_one_trace_per_admitted_session(self, traced_run):
        tracer, report = traced_run
        assert tracer.n_traces == report.n_sessions == N_REQUESTS
        roots = [s for s in tracer.spans if s.parent_id is None]
        assert len(roots) == N_REQUESTS
        assert all(s.name == "request" for s in roots)

    def test_every_request_has_four_nested_stages(self, traced_run):
        tracer, _ = traced_run
        for trace_id, spans in tracer.traces().items():
            names = {s.name for s in spans if s.parent_id is not None}
            missing = REQUIRED_STAGES - names
            assert not missing, f"trace {trace_id} missing stages {missing}"
            assert len(spans) >= 5  # root + the four stages

    def test_child_durations_sum_within_parent(self, traced_run):
        tracer, _ = traced_run
        by_parent: dict[int, float] = {}
        durations = {}
        for span in tracer.spans:
            durations[span.span_id] = span.duration_s
            if span.parent_id is not None:
                by_parent[span.parent_id] = (
                    by_parent.get(span.parent_id, 0.0) + span.duration_s
                )
        for parent_id, child_sum in by_parent.items():
            assert child_sum <= durations[parent_id] + 1e-12

    def test_root_spans_carry_decision_attributes(self, traced_run):
        tracer, report = traced_run
        roots = sorted(
            (s for s in tracer.spans if s.parent_id is None),
            key=lambda s: s.trace_id,
        )
        for root, placement in zip(roots, report.placements):
            assert root.attributes["game"] == placement.game
            assert root.attributes["server_id"] == placement.server_id
            assert root.attributes["policy"] == placement.policy

    def test_chrome_export_is_valid_trace_json(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        tracer.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"], "no events exported"
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_trace_reflects_predictor_stages_on_cache_miss(self, traced_run):
        tracer, _ = traced_run
        names = {s.name for s in tracer.spans}
        # The cold cache forces real predictor work in at least one request.
        assert "featurize" in names
        assert "model_eval" in names


class TestTraceDeterminism:
    def _run(self, minilab):
        sessions = generate_sessions(
            minilab.names[:6], 30, arrival_rate=4.0, seed=7
        )
        tracer = Tracer(clock=TickClock())
        policy = CMFeasiblePolicy(
            minilab.predictor, 60.0, cache=PredictionCache(4096)
        )
        RequestBroker(AdmissionController(policy), tracer=tracer).run(sessions)
        return tracer

    def test_same_seed_and_clock_byte_identical(self, minilab):
        assert self._run(minilab).to_jsonl() == self._run(minilab).to_jsonl()


class TestDisabledTracing:
    def test_untraced_run_records_nothing_and_places_identically(self, minilab):
        sessions = generate_sessions(
            minilab.names[:6], 30, arrival_rate=4.0, seed=7
        )

        def run(tracer):
            policy = CMFeasiblePolicy(
                minilab.predictor, 60.0, cache=PredictionCache(4096)
            )
            controller = AdmissionController(policy)
            broker = (
                RequestBroker(controller, tracer=tracer)
                if tracer is not None
                else RequestBroker(controller)
            )
            return broker, broker.run(sessions)

        broker_off, report_off = run(None)
        broker_on, report_on = run(Tracer(clock=TickClock()))
        assert broker_off.tracer.spans == []
        assert broker_off.tracer.enabled is False
        assert report_off.choices() == report_on.choices()
        assert broker_on.tracer.n_traces == 30
