"""Property-based tests over the simulator on random colocations."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.games import build_catalog
from repro.simulator import ColocationEngine, GameInstance, run_colocation

CATALOG = build_catalog()
NAMES = CATALOG.names()

name_sets = st.lists(
    st.sampled_from(NAMES), min_size=1, max_size=4, unique=True
)


@st.composite
def colocations(draw):
    names = draw(name_sets)
    return [GameInstance(CATALOG.get(n)) for n in names]


class TestSteadyStateProperties:
    @given(colocations())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_fixed_point_invariants(self, workloads):
        state = ColocationEngine().steady_state(workloads)
        assert state.converged
        assert np.all(state.rate_factors > 0.0)
        assert np.all(state.rate_factors <= 1.0 + 1e-9)
        assert np.all(state.pressures >= 0.0)
        assert np.all(state.pressures <= 1.0 + 1e-9)
        assert np.all(state.stage_inflations >= 1.0 - 1e-12)

    @given(colocations())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_order_invariance(self, workloads):
        """Contention physics cannot depend on workload list order."""
        state_fwd = ColocationEngine().steady_state(list(workloads))
        state_rev = ColocationEngine().steady_state(list(reversed(workloads)))
        assert np.allclose(
            np.sort(state_fwd.rate_factors), np.sort(state_rev.rate_factors),
            atol=1e-6,
        )

    @given(colocations())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_measurement_deterministic(self, workloads):
        a = run_colocation(list(workloads))
        b = run_colocation(list(workloads))
        assert a.fps == b.fps

    @given(st.sampled_from(NAMES), name_sets)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_corunners_never_speed_a_game_up(self, target, others):
        target_instance = GameInstance(CATALOG.get(target))
        co = [GameInstance(CATALOG.get(n)) for n in others if n != target]
        solo = run_colocation([target_instance])
        coloc = run_colocation([target_instance] + co)
        # 6% slack: measurement noise of two independent runs.
        assert coloc.fps[0] <= solo.fps[0] * 1.06
