"""Tests for the serving prediction cache and its key canonicalization."""

import pytest

from repro.games.resolution import Resolution
from repro.placement.cache import PredictionCache, colocation_key

R1080 = Resolution(1920, 1080)
R720 = Resolution(1280, 720)


class TestColocationKey:
    def test_order_insensitive(self):
        forward = colocation_key((("a", R1080), ("b", R720)))
        backward = colocation_key((("b", R720), ("a", R1080)))
        assert forward == backward

    def test_duplicate_entries_are_a_multiset(self):
        single = colocation_key((("a", R1080),))
        double = colocation_key((("a", R1080), ("a", R1080)))
        assert single != double
        assert colocation_key((("a", R1080), ("a", R1080))) == double

    def test_resolution_distinguishes(self):
        assert colocation_key((("a", R1080),)) != colocation_key((("a", R720),))

    def test_qos_in_key(self):
        entries = (("a", R1080), ("b", R720))
        assert colocation_key(entries, 60.0) != colocation_key(entries, 50.0)
        assert colocation_key(entries, 60.0) != colocation_key(entries)
        assert colocation_key(entries, 60) == colocation_key(entries, 60.0)

    def test_key_is_hashable(self):
        {colocation_key((("a", R1080),), 60.0): True}


class TestPredictionCache:
    def test_miss_then_hit(self):
        cache = PredictionCache(4)
        key = colocation_key((("a", R1080),), 60.0)
        assert cache.lookup(key) is None
        cache.put(key, False)
        assert cache.lookup(key) is False
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = PredictionCache(2)
        k1, k2, k3 = (("k", 1),), (("k", 2),), (("k", 3),)
        cache.put(k1, 1)
        cache.put(k2, 2)
        cache.lookup(k1)  # refresh k1: k2 becomes LRU
        cache.put(k3, 3)
        assert k1 in cache
        assert k2 not in cache
        assert k3 in cache
        assert cache.evictions == 1

    def test_capacity_bound(self):
        cache = PredictionCache(8)
        for i in range(50):
            cache.put(("k", i), i)
        assert len(cache) == 8
        assert cache.evictions == 42

    def test_zero_capacity_disables(self):
        cache = PredictionCache(0)
        cache.put(("k",), 1)
        assert len(cache) == 0
        assert cache.lookup(("k",)) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PredictionCache(-1)

    def test_get_or_compute(self):
        cache = PredictionCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute(("k",), compute) == "value"
        assert cache.get_or_compute(("k",), compute) == "value"
        assert len(calls) == 1

    def test_clear_keeps_stats(self):
        cache = PredictionCache(4)
        cache.put(("k",), 1)
        cache.lookup(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_jsonable(self):
        import json

        json.dumps(PredictionCache(4).stats())


class TestInvalidateCanonicalKeys:
    """Satellite of the cache-key contract: invalidation folds permutations.

    Keys are canonical (sorted entries), so invalidating *any* permutation
    of a co-runner set must evict the one entry every permutation shares.
    """

    ENTRIES = (("a", R1080), ("b", R720), ("c", R1080))

    def permutations(self):
        import itertools

        return [tuple(p) for p in itertools.permutations(self.ENTRIES)]

    def test_invalidating_any_permutation_evicts_all(self):
        for perm in self.permutations():
            cache = PredictionCache(8)
            cache.put(colocation_key(self.ENTRIES, 60.0), True)
            assert cache.invalidate(colocation_key(perm, 60.0))
            for other in self.permutations():
                assert cache.lookup(colocation_key(other, 60.0)) is None

    def test_all_permutations_share_one_entry(self):
        cache = PredictionCache(8)
        for perm in self.permutations():
            cache.put(colocation_key(perm, 60.0), True)
        assert len(cache) == 1

    def test_invalidate_counts_hits_and_misses(self):
        cache = PredictionCache(8)
        key = colocation_key(self.ENTRIES, 60.0)
        cache.put(key, False)
        assert cache.lookup(colocation_key(reversed(self.ENTRIES), 60.0)) is False
        assert cache.invalidate(key)
        assert cache.lookup(key) is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.invalidations == 1
        assert cache.evictions == 0
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_missing_key_is_uncounted(self):
        cache = PredictionCache(8)
        assert not cache.invalidate(colocation_key(self.ENTRIES, 60.0))
        assert cache.invalidations == 0

    def test_qos_floor_scopes_invalidation(self):
        cache = PredictionCache(8)
        cache.put(colocation_key(self.ENTRIES, 60.0), True)
        cache.put(colocation_key(self.ENTRIES, 50.0), True)
        assert cache.invalidate(colocation_key(self.ENTRIES, 60.0))
        assert cache.lookup(colocation_key(self.ENTRIES, 50.0)) is True
