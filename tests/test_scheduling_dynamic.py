"""Tests for dynamic session scheduling."""

import numpy as np
import pytest

from repro.games.resolution import Resolution
from repro.scheduling.dynamic import (
    Session,
    cm_feasible_policy,
    dedicated_policy,
    generate_sessions,
    simulate_sessions,
    vbp_policy,
)

R1080 = Resolution(1920, 1080)


class TestSession:
    def test_validation(self):
        with pytest.raises(ValueError):
            Session("a", R1080, arrival=0.0, duration=0.0)
        with pytest.raises(ValueError):
            Session("a", R1080, arrival=-1.0, duration=5.0)


class TestGenerateSessions:
    def test_count_and_ordering(self):
        sessions = generate_sessions(["a", "b"], 50, seed=0)
        assert len(sessions) == 50
        arrivals = [s.arrival for s in sessions]
        assert arrivals == sorted(arrivals)

    def test_mean_duration_plausible(self):
        sessions = generate_sessions(["a"], 3000, mean_duration=20.0, seed=1)
        durations = np.array([s.duration for s in sessions])
        assert durations.mean() == pytest.approx(20.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_sessions(["a"], 0)
        with pytest.raises(ValueError):
            generate_sessions(["a"], 5, arrival_rate=0.0)


class TestPolicies:
    def test_dedicated_never_reuses(self):
        policy = dedicated_policy()
        session = Session("a", R1080, 0.0, 10.0)
        assert policy([(("a", R1080),)], session) is None

    def test_cm_policy_packs_when_feasible(self, minilab):
        policy = cm_feasible_policy(minilab.predictor, qos=1.0)
        session = Session(minilab.names[0], R1080, 0.0, 10.0)
        # With a trivial QoS floor every colocation is feasible: reuse.
        servers = [((minilab.names[1], R1080),)]
        assert policy(servers, session) == 0

    def test_cm_policy_opens_when_infeasible(self, minilab):
        policy = cm_feasible_policy(minilab.predictor, qos=10000.0)
        session = Session(minilab.names[0], R1080, 0.0, 10.0)
        servers = [((minilab.names[1], R1080),)]
        assert policy(servers, session) is None

    def test_cm_policy_respects_max_colocation(self, minilab):
        policy = cm_feasible_policy(minilab.predictor, qos=1.0, max_colocation=2)
        session = Session(minilab.names[0], R1080, 0.0, 10.0)
        full = tuple((minilab.names[i], R1080) for i in (1, 2))
        assert policy([full], session) is None

    def test_vbp_policy_first_fit(self, minilab):
        policy = vbp_policy(minilab.vbp)
        session = Session(minilab.names[0], R1080, 0.0, 10.0)
        assert policy([()], session) == 0

    def test_margin_validated(self, minilab):
        with pytest.raises(ValueError, match="margin"):
            cm_feasible_policy(minilab.predictor, 60.0, margin=0.5)

    def test_margin_never_packs_more(self, minilab):
        sessions = generate_sessions(
            minilab.names[:4], 60, arrival_rate=4.0, seed=9
        )
        loose = simulate_sessions(
            minilab.catalog,
            sessions,
            cm_feasible_policy(minilab.predictor, 60.0),
            qos=60.0,
        )
        strict = simulate_sessions(
            minilab.catalog,
            sessions,
            cm_feasible_policy(minilab.predictor, 60.0, margin=1.3),
            qos=60.0,
        )
        # A stricter floor cannot systematically pack tighter (small slack
        # because greedy packing is not strictly monotone in the floor).
        assert strict.server_minutes >= 0.9 * loose.server_minutes


class TestSimulateSessions:
    def test_dedicated_baseline_invariants(self, minilab):
        sessions = generate_sessions(minilab.names[:4], 40, seed=2)
        metrics = simulate_sessions(
            minilab.catalog, sessions, dedicated_policy(), qos=60.0
        )
        assert metrics.n_sessions == 40
        assert metrics.server_minutes == pytest.approx(
            metrics.dedicated_server_minutes, rel=1e-6
        )
        assert metrics.utilization_gain == pytest.approx(0.0, abs=1e-9)
        assert 0.0 <= metrics.violation_fraction <= 1.0

    def test_cm_policy_saves_server_time(self, minilab):
        sessions = generate_sessions(
            minilab.names[:4], 60, arrival_rate=4.0, seed=3
        )
        dedicated = simulate_sessions(
            minilab.catalog, sessions, dedicated_policy(), qos=60.0
        )
        packed = simulate_sessions(
            minilab.catalog,
            sessions,
            cm_feasible_policy(minilab.predictor, 60.0),
            qos=60.0,
        )
        assert packed.server_minutes < dedicated.server_minutes
        assert packed.peak_servers <= dedicated.peak_servers

    def test_violation_time_bounded_by_session_time(self, minilab):
        sessions = generate_sessions(minilab.names[:4], 30, seed=4)
        metrics = simulate_sessions(
            minilab.catalog,
            sessions,
            vbp_policy(minilab.vbp),
            qos=60.0,
        )
        # Up to `size` games can violate simultaneously on one server, but
        # total violation time can never exceed total session time.
        assert metrics.violation_minutes <= metrics.session_minutes + 1e-6
