"""Delay-aware colocation screening (extension of paper Section 7).

Frame rate is not the whole experience: players feel the *processing
delay* (frame time + capture/encode).  This example trains the delay model
alongside the RM and screens candidate colocations against both a 60 FPS
floor and a 40 ms processing-delay ceiling.

Run:  python examples/delay_aware_placement.py
"""

import itertools

from repro.core import (
    ColocationSpec,
    GAugurDelayRegressor,
    GAugurRegressor,
    build_dataset,
    build_delay_dataset,
    generate_colocations,
    measure_colocations,
    measure_delay_colocations,
)
from repro.games import REFERENCE_RESOLUTION, build_catalog
from repro.profiling import ContentionProfiler

GAMES = ["Dota2", "H1Z1", "Team Fortress 2", "Stardew Valley",
         "World of Warcraft", "Northgard"]
QOS_FPS = 60.0
DELAY_CEILING_MS = 40.0


def main() -> None:
    catalog = build_catalog()
    print(f"Profiling {len(GAMES)} games...")
    db = ContentionProfiler().profile_catalog([catalog.get(n) for n in GAMES])

    print("Measuring the training campaign (FPS and processing delay)...")
    colocations = generate_colocations(GAMES, sizes={2: 60, 3: 30}, seed=11)
    fps_measured = measure_colocations(catalog, colocations)
    delay_measured = measure_delay_colocations(catalog, colocations)

    rm = GAugurRegressor().fit(build_dataset(fps_measured, db).rm)
    delay_model = GAugurDelayRegressor().fit(
        build_delay_dataset(delay_measured, db)
    )

    print(f"\nScreening pairs: FPS >= {QOS_FPS:.0f} and delay <= {DELAY_CEILING_MS:.0f} ms")
    print(f"  {'pair':42s} {'min FPS':>8s} {'max delay':>10s}  verdict")
    for a, b in itertools.combinations(GAMES, 2):
        spec = ColocationSpec(
            ((a, REFERENCE_RESOLUTION), (b, REFERENCE_RESOLUTION))
        )
        profiles = [(db.get(a), REFERENCE_RESOLUTION), (db.get(b), REFERENCE_RESOLUTION)]
        fps = [
            rm.predict_fps(db.get(x), REFERENCE_RESOLUTION,
                           [p for p in profiles if p[0].name != x])
            for x in (a, b)
        ]
        delays = delay_model.predict_delay_ms(db, spec)
        ok = min(fps) >= QOS_FPS and max(delays) <= DELAY_CEILING_MS
        print(
            f"  {a + ' + ' + b:42s} {min(fps):8.1f} {max(delays):9.1f}ms  "
            f"{'OK' if ok else 'reject'}"
        )


if __name__ == "__main__":
    main()
