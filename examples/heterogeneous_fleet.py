"""Heterogeneous fleet sizing (extension of paper Section 8).

The paper profiles one server type; real fleets mix generations.  This
example profiles a few games on each server type in the catalog, trains a
per-type RM (the O(N)-per-type cost the paper's future work anticipates),
and shows how the same colocation's predicted frame rates differ across
hardware — the input a fleet-aware dispatcher would use.

Run:  python examples/heterogeneous_fleet.py
"""

from repro.core import (
    ColocationSpec,
    GAugurRegressor,
    build_dataset,
    generate_colocations,
    measure_colocations,
)
from repro.games import REFERENCE_RESOLUTION, build_catalog
from repro.hardware import server_catalog
from repro.profiling import ContentionProfiler
from repro.simulator import run_colocation

GAMES = ["Dota2", "H1Z1", "Stardew Valley", "World of Warcraft", "Far Cry4"]
COLOCATION = ("Dota2", "H1Z1", "World of Warcraft")


def main() -> None:
    catalog = build_catalog()
    spec = ColocationSpec(
        tuple((name, REFERENCE_RESOLUTION) for name in COLOCATION)
    )

    print(f"colocation under study: {' + '.join(COLOCATION)}\n")
    header = f"{'server type':26s} " + "".join(f"{n[:14]:>16s}" for n in COLOCATION)
    print(header + f" {'RM error':>9s}")

    for name, server in server_catalog().items():
        profiler = ContentionProfiler(server=server)
        db = profiler.profile_catalog([catalog.get(n) for n in GAMES])
        campaign = generate_colocations(GAMES, sizes={2: 50, 3: 25}, seed=5)
        measured = measure_colocations(catalog, campaign, server=server)
        dataset = build_dataset(measured, db)
        rm = GAugurRegressor().fit(dataset.rm)

        # Predicted vs actual for the studied colocation on this hardware.
        predicted = []
        for i, (game, resolution) in enumerate(spec.entries):
            co = [
                (db.get(g), r)
                for j, (g, r) in enumerate(spec.entries)
                if j != i
            ]
            predicted.append(rm.predict_fps(db.get(game), resolution, co))
        actual = run_colocation(spec.instances(catalog), server=server).fps
        error = sum(
            abs(p - a) / a for p, a in zip(predicted, actual)
        ) / len(actual)
        row = f"{name:26s} " + "".join(
            f"{p:7.0f}/{a:<7.0f}" for p, a in zip(predicted, actual)
        )
        print(row + f" {error:8.1%}")

    print("\n(columns are predicted/actual FPS per game)")


if __name__ == "__main__":
    main()
