"""Capacity planning: minimize servers under a QoS guarantee (Section 5.1).

A cloud-gaming operator serves a burst of requests over a fixed game
portfolio and wants the fewest servers such that every game holds 60 FPS.
The script identifies feasible colocations with GAugur's CM, packs requests
with the greedy set-cover Algorithm 1, and compares against vector bin
packing and dedicated servers.

Run:  REPRO_SCALE=small python examples/capacity_planning.py
(unset REPRO_SCALE for the paper-scale setup; first run profiles the
catalog and takes a few minutes, later runs reuse the disk cache.)
"""

from repro.experiments.lab import get_lab
from repro.scheduling import (
    actual_feasibility,
    enumerate_colocations,
    generate_requests,
    judge_feasibility,
    pack_requests,
    score_judgements,
)

QOS = 60.0
N_REQUESTS = 2000


def main() -> None:
    lab = get_lab()
    portfolio = lab.names[:10]
    print(f"portfolio: {', '.join(portfolio)}")

    print("\nEnumerating and judging colocations of up to 4 games...")
    colocations = enumerate_colocations(portfolio, max_size=4)
    actual = actual_feasibility(lab.catalog, colocations, QOS, server=lab.server)
    print(f"  {int(actual.sum())} / {len(colocations)} colocations actually feasible")

    judges = {
        "GAugur(CM)": lab.predictor.colocation_feasible,
        "VBP": lab.vbp.colocation_feasible,
    }
    requests = generate_requests(portfolio, N_REQUESTS, seed=1)

    print(f"\nPacking {N_REQUESTS} requests at QoS {QOS:.0f} FPS:")
    print(f"  {'methodology':14s} {'accuracy':>8s} {'precision':>9s} {'recall':>7s} {'servers':>8s}")
    for label, judge in judges.items():
        judged = judge_feasibility(judge, colocations, QOS)
        report = score_judgements(actual, judged)
        usable = [c for c, a, j in zip(colocations, actual, judged) if a and j]
        packed = pack_requests(requests, usable)
        print(
            f"  {label:14s} {report.accuracy:8.3f} {report.precision:9.3f} "
            f"{report.recall:7.3f} {packed.n_servers:8d}"
        )
    print(f"  {'No colocation':14s} {'-':>8s} {'-':>9s} {'-':>7s} {N_REQUESTS:8d}")


if __name__ == "__main__":
    main()
