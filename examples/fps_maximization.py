"""Overall-performance maximization on a fixed fleet (Section 5.2).

The fleet size is fixed; every arriving request must be placed. GAugur's RM
predicts the post-assignment frame rates of each candidate server so the
dispatcher can pick the least-destructive placement; VBP places worst-fit
by leftover demand capacity. Ground-truth frame rates of the final
placements come from the simulator.

Run:  REPRO_SCALE=small python examples/fps_maximization.py
"""

import numpy as np

from repro.experiments.lab import get_lab
from repro.scheduling import (
    assign_max_fps,
    assign_worst_fit,
    evaluate_assignment,
    generate_requests,
)

N_REQUESTS = 1200
FLEET_SIZES = (400, 600)


def main() -> None:
    lab = get_lab()
    portfolio = lab.names[:10]
    requests = generate_requests(portfolio, N_REQUESTS, seed=3)
    print(f"{N_REQUESTS} requests over {len(portfolio)} games\n")

    for n_servers in FLEET_SIZES:
        gaugur = assign_max_fps(requests, lab.predictor, n_servers)
        vbp = assign_worst_fit(requests, lab.vbp, n_servers)
        fps_gaugur = evaluate_assignment(lab.catalog, gaugur, server=lab.server)
        fps_vbp = evaluate_assignment(lab.catalog, vbp, server=lab.server)
        gain = fps_gaugur.mean() / fps_vbp.mean() - 1.0
        print(f"fleet of {n_servers} servers:")
        print(
            f"  GAugur(RM): avg {fps_gaugur.mean():6.1f} FPS   "
            f"(p10 {np.percentile(fps_gaugur, 10):5.1f})"
        )
        print(
            f"  VBP:        avg {fps_vbp.mean():6.1f} FPS   "
            f"(p10 {np.percentile(fps_vbp, 10):5.1f})"
        )
        print(f"  -> GAugur improves average FPS by {gain:+.1%}\n")


if __name__ == "__main__":
    main()
