"""Profile explorer: inspect one game's contention fingerprint.

Profiles a single game against all seven pressure benchmarks and prints
its sensitivity curves, intensity vector, and the resolution scaling laws
(Observations 6-8 / Eq. 2) that let GAugur serve any player resolution
from two-three profiled points.

Run:  python examples/profile_explorer.py "Far Cry4"
"""

import sys

from repro.games import PRESET_RESOLUTIONS, REFERENCE_RESOLUTION, build_catalog
from repro.hardware.resources import Resource
from repro.profiling import ContentionProfiler


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Far Cry4"
    catalog = build_catalog()
    spec = catalog.get(name)
    print(f"profiling {name} ({spec.genre.value})...\n")
    profile = ContentionProfiler().profile_game(spec)

    print("sensitivity curves (retained FPS ratio at pressure 0 .. 1):")
    dials = profile.sensitivity[Resource.CPU_CE].pressures
    header = "  ".join(f"{d:4.1f}" for d in dials)
    print(f"  {'resource':8s}  {header}")
    for res in Resource:
        curve = profile.sensitivity[res]
        row = "  ".join(f"{v:4.2f}" for v in curve.degradations)
        print(f"  {res.label:8s}  {row}")

    print("\nintensity (benchmark slowdown) at the profiled resolutions:")
    for resolution in profile.profiled_resolutions:
        vec = profile.intensity[resolution]
        row = "  ".join(f"{res.label}={vec[res]:.2f}" for res in Resource)
        print(f"  {resolution}: {row}")

    print("\nresolution laws (Eq. 2 + Observations 7-8):")
    for resolution in PRESET_RESOLUTIONS:
        fps = profile.solo_fps_at(resolution)
        gpu_ce = profile.intensity_at(resolution)[Resource.GPU_CE]
        print(
            f"  {str(resolution):9s}: solo {fps:6.1f} FPS, "
            f"GPU-CE intensity {gpu_ce:.2f}"
        )

    cpu_gb, gpu_gb = profile.cpu_mem_gb, profile.gpu_mem_gb
    print(f"\nmemory demand: {cpu_gb:.1f} GB RAM, {gpu_gb:.1f} GB VRAM")
    print(
        f"solo frame rate at {REFERENCE_RESOLUTION}: "
        f"{profile.solo_fps_at(REFERENCE_RESOLUTION):.1f} FPS"
    )


if __name__ == "__main__":
    main()
