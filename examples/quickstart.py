"""Quickstart: profile games, train GAugur, predict a colocation.

Walks the full methodology on a handful of games in about a minute:

1. build the synthetic catalog (the simulated game install base),
2. profile contention features offline (sensitivity + intensity),
3. measure a small colocation campaign and train the CM/RM,
4. predict an unseen colocation and compare with the simulator's truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ColocationSpec,
    GAugurClassifier,
    GAugurRegressor,
    InterferencePredictor,
    build_dataset,
    generate_colocations,
    measure_colocations,
)
from repro.games import REFERENCE_RESOLUTION, build_catalog
from repro.profiling import ContentionProfiler
from repro.simulator import run_colocation

GAMES = ["Dota2", "H1Z1", "Far Cry4", "Stardew Valley", "World of Warcraft",
         "Team Fortress 2", "Cities: Skylines", "NieR: Automata"]
QOS = 60.0


def main() -> None:
    catalog = build_catalog()

    print(f"1. Profiling {len(GAMES)} games (offline, once per game)...")
    profiler = ContentionProfiler()
    db = profiler.profile_catalog([catalog.get(n) for n in GAMES])
    for name in GAMES[:3]:
        profile = db.get(name)
        print(f"   {name}: solo {profile.solo_fps_at(REFERENCE_RESOLUTION):.0f} FPS @1080p")

    print("\n2. Measuring a training campaign of real colocations...")
    colocations = generate_colocations(GAMES, sizes={2: 80, 3: 30, 4: 20}, seed=7)
    measured = measure_colocations(catalog, colocations)
    dataset = build_dataset(measured, db, qos_values=(QOS,))
    print(f"   {len(colocations)} colocations -> {len(dataset.rm)} samples per model")

    print("\n3. Training the classification (CM) and regression (RM) models...")
    cm = GAugurClassifier().fit(dataset.cm)
    rm = GAugurRegressor().fit(dataset.rm)
    predictor = InterferencePredictor(db, classifier=cm, regressor=rm)

    print("\n4. Predicting an unseen colocation vs. ground truth:")
    spec = ColocationSpec(
        (
            ("Dota2", REFERENCE_RESOLUTION),
            ("Far Cry4", REFERENCE_RESOLUTION),
            ("Stardew Valley", REFERENCE_RESOLUTION),
        )
    )
    predicted_fps = predictor.predict_fps(spec)
    feasible = predictor.predict_feasible(spec, QOS)
    actual = run_colocation(spec.instances(catalog))

    print(f"   {'game':22s} {'predicted':>10s} {'actual':>8s} {'meets ' + str(int(QOS)):>9s}")
    for i, (name, _) in enumerate(spec.entries):
        print(
            f"   {name:22s} {predicted_fps[i]:9.1f}  {actual.fps[i]:7.1f} "
            f"{str(bool(feasible[i])):>9s}"
        )
    errors = np.abs(predicted_fps - np.asarray(actual.fps)) / np.asarray(actual.fps)
    print(f"\n   mean prediction error: {errors.mean():.1%}")


if __name__ == "__main__":
    main()
